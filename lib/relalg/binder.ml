exception Bind_error of string

module A = Sql.Ast
module L = Lplan
module D = Storage.Dtype
module V = Storage.Value

let err fmt = Printf.ksprintf (fun s -> raise (Bind_error s)) fmt
let norm = String.lowercase_ascii

(* ------------------------------------------------------------------ *)
(* Scopes                                                              *)
(* ------------------------------------------------------------------ *)

(* A scope is an ordered list of ranges (FROM items); global column
   indices are positional across the concatenated ranges. *)
type range = { r_alias : string option; r_fields : Rschema.t }
type scope = range list

let scope_arity scope =
  List.fold_left (fun acc r -> acc + Rschema.arity r.r_fields) 0 scope

let scope_schema scope =
  Array.concat (List.map (fun r -> r.r_fields) scope)

(* Resolve a possibly-qualified column name to (global index, field). *)
let resolve_col scope qual name =
  let matches =
    let rec loop offset acc = function
      | [] -> List.rev acc
      | r :: rest ->
        let acc =
          let range_matches =
            match qual with
            | Some q -> (
              match r.r_alias with
              | Some a -> String.equal (norm a) (norm q)
              | None -> false)
            | None -> true
          in
          if range_matches then
            match Rschema.index_of r.r_fields name with
            | Some i -> (offset + i, Rschema.field r.r_fields i) :: acc
            | None -> acc
          else acc
        in
        loop (offset + Rschema.arity r.r_fields) acc rest
    in
    loop 0 [] scope
  in
  match matches, qual with
  | [ m ], _ -> m
  | [], Some q -> err "unknown column %s.%s" q name
  | [], None -> err "unknown column %s" name
  | _ :: _ :: _, Some q -> err "ambiguous column %s.%s" q name
  | _ :: _ :: _, None -> err "ambiguous column %s" name

(* ------------------------------------------------------------------ *)
(* Context                                                             *)
(* ------------------------------------------------------------------ *)

type ctx = {
  catalog : Storage.Catalog.t;
  params : V.t array;
  env : (string * L.plan) list; (* CTEs in scope *)
  outer_scope : scope;
      (* the scope at the point a subquery appeared: unresolved columns
         fall back to it as Outer_col references (one level deep) *)
}

let resolve_table ctx name =
  match List.assoc_opt (norm name) ctx.env with
  | Some plan -> plan
  | None -> (
    match Storage.Catalog.find ctx.catalog name with
    | Some table ->
      L.Scan
        { table = norm name; schema = Rschema.of_storage (Storage.Table.schema table) }
    | None -> (
      (* virtual system tables (the sqlgraph_stat family) resolve after base
         tables: materialize once here just to learn the schema — the
         executor's Scan re-materializes a fresh copy at run time *)
      match Storage.Catalog.virtual_provider ctx.catalog name with
      | Some provider ->
        L.Scan
          {
            table = norm name;
            schema = Rschema.of_storage (Storage.Table.schema (provider ()));
          }
      | None -> err "unknown table %s" name))

(* Cheapest-sum registrations: filled in a first pass over the select
   items, laid out after the FROM schema, consumed during binding. *)
type cheapest_reg = {
  reg_cost_col : int;
  reg_cost_ty : D.t;
  reg_path_col : int option;
}

type op_builder = {
  ob_id : int;
  ob_alias : string option;
  ob_edge : L.plan;
  ob_edge_fields : Rschema.t;
  ob_src_cols : int list;
  ob_dst_cols : int list;
  ob_src_exprs : L.expr list;
  ob_dst_exprs : L.expr list;
  mutable ob_cheapests : L.cheapest list; (* in registration order, reversed *)
}

(* ------------------------------------------------------------------ *)
(* Types of expressions                                                *)
(* ------------------------------------------------------------------ *)

let unify_types what a b =
  if D.equal a b then a
  else
    match a, b with
    | D.TInt, D.TFloat | D.TFloat, D.TInt -> D.TFloat
    | _ -> err "%s: incompatible types %s and %s" what (D.name a) (D.name b)

let require_numeric what ty =
  if not (D.is_numeric ty) then
    err "%s: expected a numeric expression, got %s" what (D.name ty)

let require_bool what ty =
  if not (D.equal ty D.TBool) then
    err "%s: expected a boolean expression, got %s" what (D.name ty)

let comparable what a b =
  if
    D.equal a b
    || (D.is_numeric a && D.is_numeric b)
  then ()
  else err "%s: cannot compare %s with %s" what (D.name a) (D.name b)

(* Implicit coercion in comparison contexts: a string compared against a
   DATE is cast to DATE (so the paper's [creationDate < '2011-01-01']
   works as written). *)
let coerce_comparison (a : Lplan.expr) (b : Lplan.expr) =
  match a.Lplan.ty, b.Lplan.ty with
  | D.TDate, D.TStr ->
    (a, { Lplan.node = Lplan.Cast (b, D.TDate); ty = D.TDate })
  | D.TStr, D.TDate ->
    ({ Lplan.node = Lplan.Cast (a, D.TDate); ty = D.TDate }, b)
  | _ -> (a, b)

let arith_ty op a b =
  match op with
  | A.Add | A.Sub | A.Mul | A.Div ->
    (* date arithmetic *)
    (match op, a, b with
    | A.Add, D.TDate, D.TInt | A.Add, D.TInt, D.TDate -> D.TDate
    | A.Sub, D.TDate, D.TInt -> D.TDate
    | A.Sub, D.TDate, D.TDate -> D.TInt
    | _ ->
      require_numeric "arithmetic" a;
      require_numeric "arithmetic" b;
      if D.equal a D.TFloat || D.equal b D.TFloat then D.TFloat else D.TInt)
  | A.Mod ->
    if D.equal a D.TInt && D.equal b D.TInt then D.TInt
    else err "%% expects integer operands"
  | _ -> assert false

let builtin_of_name = function
  | "ABS" -> Some L.Abs
  | "UPPER" -> Some L.Upper
  | "LOWER" -> Some L.Lower
  | "LENGTH" -> Some L.Length
  | "COALESCE" -> Some L.Coalesce
  | "SUBSTR" | "SUBSTRING" -> Some L.Substr
  | "REPLACE" -> Some L.Replace
  | "TRIM" -> Some L.Trim
  | "LTRIM" -> Some L.Ltrim
  | "RTRIM" -> Some L.Rtrim
  | "ROUND" -> Some L.Round
  | "FLOOR" -> Some L.Floor
  | "CEIL" | "CEILING" -> Some L.Ceil
  | "SQRT" -> Some L.Sqrt
  | "POWER" | "POW" -> Some L.Power
  | "SIGN" -> Some L.Sign
  | "YEAR" -> Some L.Year
  | "MONTH" -> Some L.Month
  | "DAY" -> Some L.Day
  | _ -> None

let agg_of_name = function
  | "COUNT" -> Some L.Count
  | "SUM" -> Some L.Sum
  | "AVG" -> Some L.Avg
  | "MIN" -> Some L.Min
  | "MAX" -> Some L.Max
  | _ -> None

let literal_to_value = function
  | A.L_int i -> V.Int i
  | A.L_float f -> V.Float f
  | A.L_string s -> V.Str s
  | A.L_bool b -> V.Bool b
  | A.L_null -> V.Null

let value_ty v =
  match V.dtype_of v with Some ty -> ty | None -> D.TInt (* NULL default *)

(* ------------------------------------------------------------------ *)
(* Expression binding                                                  *)
(* ------------------------------------------------------------------ *)

(* [cheapest_queue]: when binding select items, each Cheapest_sum node in
   document order pops the next registration. Everywhere else the queue is
   None and CHEAPEST SUM is rejected. *)
type bind_mode = {
  allow_agg : bool;
  cheapest_queue : cheapest_reg Queue.t option;
}

let plain_mode = { allow_agg = false; cheapest_queue = None }

let rec bind_expr ctx scope mode (e : A.expr) : L.expr =
  match e with
  | A.Lit lit ->
    let v = literal_to_value lit in
    { L.node = L.Const v; ty = value_ty v }
  | A.Param i ->
    if i >= Array.length ctx.params then
      err "query expects at least %d parameters, got %d" (i + 1)
        (Array.length ctx.params);
    let v = ctx.params.(i) in
    { L.node = L.Const v; ty = value_ty v }
  | A.Col (qual, name) -> (
    match resolve_col scope qual name with
    | idx, field -> { L.node = L.Col idx; ty = field.Rschema.ty }
    | exception (Bind_error _ as local_failure) -> (
      (* correlated reference: fall back to the enclosing scope *)
      match ctx.outer_scope with
      | [] -> raise local_failure
      | outer -> (
        match resolve_col outer qual name with
        | idx, field -> { L.node = L.Outer_col idx; ty = field.Rschema.ty }
        | exception Bind_error _ -> raise local_failure)))
  | A.Star _ -> err "* is only allowed in the select list and in COUNT(*)"
  | A.Bin (op, a, b) -> (
    let ba = bind_expr ctx scope mode a in
    let bb = bind_expr ctx scope mode b in
    match op with
    | A.Add | A.Sub | A.Mul | A.Div | A.Mod ->
      { L.node = L.Bin (op, ba, bb); ty = arith_ty op ba.L.ty bb.L.ty }
    | A.Concat ->
      if D.equal ba.L.ty D.TPath || D.equal bb.L.ty D.TPath then
        err "|| cannot be applied to paths";
      { L.node = L.Bin (op, ba, bb); ty = D.TStr }
    | A.Eq | A.Neq | A.Lt | A.Le | A.Gt | A.Ge ->
      let ba, bb = coerce_comparison ba bb in
      comparable "comparison" ba.L.ty bb.L.ty;
      { L.node = L.Bin (op, ba, bb); ty = D.TBool }
    | A.And | A.Or ->
      require_bool "AND/OR operand" ba.L.ty;
      require_bool "AND/OR operand" bb.L.ty;
      { L.node = L.Bin (op, ba, bb); ty = D.TBool })
  | A.Un (A.Neg, a) ->
    let ba = bind_expr ctx scope mode a in
    require_numeric "unary minus" ba.L.ty;
    { L.node = L.Un (A.Neg, ba); ty = ba.L.ty }
  | A.Un (A.Not, a) ->
    let ba = bind_expr ctx scope mode a in
    require_bool "NOT" ba.L.ty;
    { L.node = L.Un (A.Not, ba); ty = D.TBool }
  | A.Cast (a, ty_name) -> (
    match D.of_name ty_name with
    | None -> err "unknown type %s in CAST" ty_name
    | Some ty ->
      let ba = bind_expr ctx scope mode a in
      { L.node = L.Cast (ba, ty); ty })
  | A.Case (arms, default) ->
    let barms =
      List.map
        (fun (c, v) ->
          let bc = bind_expr ctx scope mode c in
          require_bool "CASE WHEN condition" bc.L.ty;
          (bc, bind_expr ctx scope mode v))
        arms
    in
    let bdefault = Option.map (bind_expr ctx scope mode) default in
    let ty =
      let tys =
        List.map (fun (_, v) -> v.L.ty) barms
        @ match bdefault with Some d -> [ d.L.ty ] | None -> []
      in
      match tys with
      | [] -> assert false
      | t :: rest -> List.fold_left (unify_types "CASE branches") t rest
    in
    { L.node = L.Case (barms, bdefault); ty }
  | A.Func (name, args) -> bind_func ctx scope mode name args
  | A.Is_null { negated; arg } ->
    let barg = bind_expr ctx scope mode arg in
    { L.node = L.Is_null { negated; arg = barg }; ty = D.TBool }
  | A.Between { arg; lo; hi; negated } ->
    (* desugar: arg >= lo AND arg <= hi *)
    let barg = bind_expr ctx scope mode arg in
    let barg0, blo = coerce_comparison barg (bind_expr ctx scope mode lo) in
    let barg1, bhi = coerce_comparison barg (bind_expr ctx scope mode hi) in
    comparable "BETWEEN" barg0.L.ty blo.L.ty;
    comparable "BETWEEN" barg1.L.ty bhi.L.ty;
    let ge = { L.node = L.Bin (A.Ge, barg0, blo); ty = D.TBool } in
    let le = { L.node = L.Bin (A.Le, barg1, bhi); ty = D.TBool } in
    let conj = { L.node = L.Bin (A.And, ge, le); ty = D.TBool } in
    if negated then { L.node = L.Un (A.Not, conj); ty = D.TBool } else conj
  | A.In_list { arg; candidates; negated } ->
    let barg = bind_expr ctx scope mode arg in
    let bcands =
      List.map
        (fun c -> snd (coerce_comparison barg (bind_expr ctx scope mode c)))
        candidates
    in
    List.iter (fun c -> comparable "IN" barg.L.ty c.L.ty) bcands;
    { L.node = L.In_list { negated; arg = barg; candidates = bcands }; ty = D.TBool }
  | A.In_query { arg; query; negated } ->
    let barg = bind_expr ctx scope mode arg in
    let sub = bind_query_in { ctx with outer_scope = scope } query in
    let sub_schema = L.schema_of sub in
    if Rschema.arity sub_schema <> 1 then
      err "IN (subquery) must return exactly one column";
    comparable "IN" barg.L.ty (Rschema.field sub_schema 0).Rschema.ty;
    if L.plan_uses_outer sub then
      { L.node = L.In_subquery_corr { negated; arg = barg; sub }; ty = D.TBool }
    else
      { L.node = L.In_subquery { negated; arg = barg; sub }; ty = D.TBool }
  | A.Agg_distinct (name, arg) -> (
    if not mode.allow_agg then
      err "aggregate function %s is not allowed here" name;
    match agg_of_name name with
    | None -> err "%s(DISTINCT ...) is not an aggregate function" name
    | Some kind ->
      let barg = bind_expr ctx scope { mode with allow_agg = false } arg in
      if L.contains_agg barg then err "nested aggregate functions";
      let ty =
        match kind with
        | L.Count_star | L.Count -> D.TInt
        | L.Sum ->
          require_numeric "SUM" barg.L.ty;
          barg.L.ty
        | L.Avg ->
          require_numeric "AVG" barg.L.ty;
          D.TFloat
        | L.Min | L.Max -> barg.L.ty
      in
      { L.node = L.Agg_call { kind; arg = Some barg; distinct = true }; ty })
  | A.Like { arg; pattern; negated } ->
    let barg = bind_expr ctx scope mode arg in
    let bpat = bind_expr ctx scope mode pattern in
    { L.node = L.Like { negated; arg = barg; pattern = bpat }; ty = D.TBool }
  | A.Exists q ->
    let plan = bind_query_in { ctx with outer_scope = scope } q in
    if L.plan_uses_outer plan then
      { L.node = L.Exists_corr plan; ty = D.TBool }
    else { L.node = L.Exists_sub plan; ty = D.TBool }
  | A.Scalar_subquery q ->
    let plan = bind_query_in { ctx with outer_scope = scope } q in
    let schema = L.schema_of plan in
    if Rschema.arity schema <> 1 then
      err "scalar subquery must return exactly one column";
    let ty = (Rschema.field schema 0).Rschema.ty in
    if L.plan_uses_outer plan then { L.node = L.Subquery_corr plan; ty }
    else { L.node = L.Subquery plan; ty }
  | A.Row _ ->
    err "expression tuples are only allowed as REACHES endpoints"
  | A.Reaches _ ->
    err "REACHES is only allowed as a top-level conjunct of the WHERE clause"
  | A.Cheapest_sum _ -> (
    match mode.cheapest_queue with
    | None -> err "CHEAPEST SUM is only allowed in the select list"
    | Some q ->
      if Queue.is_empty q then
        err "internal: CHEAPEST SUM registration queue exhausted";
      let reg = Queue.pop q in
      { L.node = L.Col reg.reg_cost_col; ty = reg.reg_cost_ty })

and bind_func ctx scope mode name args =
  match agg_of_name name with
  | Some kind -> (
    if not mode.allow_agg then
      err "aggregate function %s is not allowed here" name;
    match kind, args with
    | L.Count, [ A.Star None ] ->
      {
        L.node = L.Agg_call { kind = L.Count_star; arg = None; distinct = false };
        ty = D.TInt;
      }
    | _, [ arg ] ->
      let barg = bind_expr ctx scope { mode with allow_agg = false } arg in
      if L.contains_agg barg then err "nested aggregate functions";
      let ty =
        match kind with
        | L.Count_star | L.Count -> D.TInt
        | L.Sum ->
          require_numeric "SUM" barg.L.ty;
          barg.L.ty
        | L.Avg ->
          require_numeric "AVG" barg.L.ty;
          D.TFloat
        | L.Min | L.Max -> barg.L.ty
      in
      { L.node = L.Agg_call { kind; arg = Some barg; distinct = false }; ty }
    | _ -> err "aggregate %s expects exactly one argument" name)
  | None -> (
    match builtin_of_name name with
    | None -> err "unknown function %s" name
    | Some b ->
      let bargs = List.map (bind_expr ctx scope mode) args in
      (* a literal NULL carries a default type; admit it anywhere *)
      let is_null_const (a : L.expr) =
        match a.L.node with L.Const V.Null -> true | _ -> false
      in
      let str_arg what (a : L.expr) =
        if not (D.equal a.L.ty D.TStr || is_null_const a) then
          err "%s expects a string argument, got %s" what (D.name a.L.ty)
      in
      let int_arg what (a : L.expr) =
        if not (D.equal a.L.ty D.TInt || is_null_const a) then
          err "%s expects an integer argument, got %s" what (D.name a.L.ty)
      in
      let date_arg what (a : L.expr) =
        if not (D.equal a.L.ty D.TDate || is_null_const a) then
          err "%s expects a DATE argument, got %s" what (D.name a.L.ty)
      in
      let ty =
        match b, bargs with
        | L.Abs, [ a ] | L.Sign, [ a ] ->
          require_numeric name a.L.ty;
          if b = L.Sign then D.TInt else a.L.ty
        | L.Upper, [ a ] | L.Lower, [ a ] | L.Trim, [ a ] | L.Ltrim, [ a ]
        | L.Rtrim, [ a ] ->
          str_arg name a;
          D.TStr
        | L.Length, [ a ] ->
          str_arg name a;
          D.TInt
        | L.Substr, [ s; start ] ->
          str_arg name s;
          int_arg name start;
          D.TStr
        | L.Substr, [ s; start; len ] ->
          str_arg name s;
          int_arg name start;
          int_arg name len;
          D.TStr
        | L.Replace, [ s; f; t ] ->
          str_arg name s;
          str_arg name f;
          str_arg name t;
          D.TStr
        | L.Round, [ a ] ->
          require_numeric name a.L.ty;
          D.TFloat
        | L.Round, [ a; d ] ->
          require_numeric name a.L.ty;
          int_arg name d;
          D.TFloat
        | L.Floor, [ a ] | L.Ceil, [ a ] ->
          require_numeric name a.L.ty;
          D.TInt
        | L.Sqrt, [ a ] ->
          require_numeric name a.L.ty;
          D.TFloat
        | L.Power, [ a; e ] ->
          require_numeric name a.L.ty;
          require_numeric name e.L.ty;
          D.TFloat
        | (L.Year | L.Month | L.Day), [ a ] ->
          date_arg name a;
          D.TInt
        | L.Coalesce, first :: rest ->
          List.fold_left
            (fun acc e -> unify_types "COALESCE" acc e.L.ty)
            first.L.ty rest
        | _, _ -> err "wrong number of arguments to %s" name
      in
      { L.node = L.Call (b, bargs); ty })

(* ------------------------------------------------------------------ *)
(* FROM clause                                                         *)
(* ------------------------------------------------------------------ *)

and bind_unnest ctx ~input ~scope ~(u : [ `U of A.expr * bool * string option ])
    ~left_outer =
  let (`U (arg, ordinality, alias)) = u in
  let path_e = bind_expr ctx scope plain_mode arg in
  if not (D.equal path_e.L.ty D.TPath) then
    err "UNNEST expects a path-typed argument, got %s" (D.name path_e.L.ty);
  let edge_schema =
    match path_e.L.node with
    | L.Col i -> (
      match (Rschema.field (scope_schema scope) i).Rschema.nested with
      | Some s -> s
      | None -> err "UNNEST: the path column carries no edge schema")
    | _ -> err "UNNEST argument must be a path column reference"
  in
  let new_fields =
    let base =
      List.map
        (fun (f : Storage.Schema.field) ->
          { Rschema.name = f.Storage.Schema.name; ty = f.Storage.Schema.ty; nested = None })
        (Storage.Schema.fields edge_schema)
    in
    if ordinality then
      base @ [ { Rschema.name = "ordinality"; ty = D.TInt; nested = None } ]
    else base
  in
  let new_fields = Array.of_list new_fields in
  let plan =
    L.Unnest
      {
        input;
        path = path_e;
        edge_schema;
        ordinality;
        left_outer;
        schema = Rschema.append (scope_schema scope) new_fields;
      }
  in
  (plan, { r_alias = alias; r_fields = new_fields })

(* A join tree binds with a *local* scope (its own operands only), so the
   resulting Join node's condition uses indices relative to left++right. *)
and bind_join_tree ctx item : L.plan * range list =
  match item with
  | A.From_table (name, alias) ->
    let plan = resolve_table ctx name in
    let fields = L.schema_of plan in
    (plan, [ { r_alias = Some (Option.value alias ~default:name); r_fields = fields } ])
  | A.From_subquery (q, alias) ->
    let plan = bind_query_in ctx q in
    (plan, [ { r_alias = Some alias; r_fields = L.schema_of plan } ])
  | A.From_unnest _ ->
    err "UNNEST must follow another FROM item (it is a lateral operator)"
  | A.From_join (l, kind, r, cond) -> (
    let pl, rl = bind_join_tree ctx l in
    match r with
    | A.From_unnest { arg; ordinality; alias; left_outer = _ } ->
      (* lateral unnest as a join operand: ON TRUE (or no ON) only *)
      (match cond with
      | None -> ()
      | Some (A.Lit (A.L_bool true)) -> ()
      | Some _ -> err "JOIN UNNEST only supports ON TRUE");
      let left_outer = kind = A.Left_outer in
      let plan, urange =
        bind_unnest ctx ~input:pl ~scope:rl
          ~u:(`U (arg, ordinality, alias))
          ~left_outer
      in
      (plan, rl @ [ urange ])
    | _ ->
      let pr, rr = bind_join_tree ctx r in
      let local_scope = rl @ rr in
      let bcond =
        match cond with
        | None -> L.bool_const true
        | Some c ->
          let bc = bind_expr ctx local_scope plain_mode c in
          require_bool "JOIN condition" bc.L.ty;
          bc
      in
      (L.Join { left = pl; right = pr; kind; cond = bcond }, local_scope))

and bind_from ctx items : L.plan * scope =
  let step (acc_plan, scope) item =
    match item with
    | A.From_unnest { arg; ordinality; alias; left_outer } ->
      let input =
        match acc_plan with
        | Some p -> p
        | None -> err "UNNEST cannot be the first FROM item"
      in
      let plan, urange =
        bind_unnest ctx ~input ~scope ~u:(`U (arg, ordinality, alias))
          ~left_outer
      in
      (Some plan, scope @ [ urange ])
    | _ ->
      let plan, ranges = bind_join_tree ctx item in
      let combined =
        match acc_plan with
        | None -> plan
        | Some p -> L.Cross { left = p; right = plan }
      in
      (Some combined, scope @ ranges)
  in
  match List.fold_left step (None, []) items with
  | None, _ -> (L.One, [])
  | Some plan, scope -> (plan, scope)

(* ------------------------------------------------------------------ *)
(* REACHES predicates                                                  *)
(* ------------------------------------------------------------------ *)

and bind_reaches ctx scope ~id (r : A.reaches) : op_builder =
  let edge_plan =
    match r.A.edge with
    | A.Ref_table name -> resolve_table ctx name
    | A.Ref_subquery q -> bind_query_in ctx q
  in
  let edge_fields = L.schema_of edge_plan in
  let col_index what name =
    match Rschema.index_of edge_fields name with
    | Some i -> i
    | None -> err "edge table has no %s column %s" what name
  in
  if List.length r.A.src_cols <> List.length r.A.dst_cols then
    err "EDGE source and destination keys have different widths";
  let src_cols = List.map (col_index "source") r.A.src_cols in
  let dst_cols = List.map (col_index "destination") r.A.dst_cols in
  (* componentwise: S_i and D_i must share one type (§2's rule, per
     attribute for composite keys) *)
  let key_types =
    List.map2
      (fun si di ->
        let s_ty = (Rschema.field edge_fields si).Rschema.ty in
        let d_ty = (Rschema.field edge_fields di).Rschema.ty in
        if not (D.equal s_ty d_ty) then
          err "edge key columns %s (%s) and %s (%s) must have the same type"
            (Rschema.field edge_fields si).Rschema.name (D.name s_ty)
            (Rschema.field edge_fields di).Rschema.name (D.name d_ty);
        s_ty)
      src_cols dst_cols
  in
  let width = List.length key_types in
  let bind_endpoint what e =
    let components =
      match e, width with
      | A.Row es, _ ->
        if List.length es <> width then
          err "REACHES %s has %d components but the edge key has %d" what
            (List.length es) width;
        List.map (bind_expr ctx scope plain_mode) es
      | _, 1 -> [ bind_expr ctx scope plain_mode e ]
      | _, _ ->
        err "REACHES %s must be a (…, …) tuple matching the composite edge key"
          what
    in
    List.iteri
      (fun i c ->
        let want = List.nth key_types i in
        if not (D.equal c.L.ty want) then
          err "REACHES %s component %d has type %s but edge keys have type %s"
            what (i + 1) (D.name c.L.ty) (D.name want))
      components;
    components
  in
  let src_exprs = bind_endpoint "source" r.A.src in
  let dst_exprs = bind_endpoint "destination" r.A.dst in
  {
    ob_id = id;
    ob_alias = r.A.edge_alias;
    ob_edge = edge_plan;
    ob_edge_fields = edge_fields;
    ob_src_cols = src_cols;
    ob_dst_cols = dst_cols;
    ob_src_exprs = src_exprs;
    ob_dst_exprs = dst_exprs;
    ob_cheapests = [];
  }

(* ------------------------------------------------------------------ *)
(* Select items: star expansion and CHEAPEST SUM registration          *)
(* ------------------------------------------------------------------ *)

(* Expand stars into explicit items so that the rest of the pipeline only
   sees expressions. *)
and expand_items scope items =
  let star_of_range offset (r : range) =
    List.mapi
      (fun i (f : Rschema.field) ->
        (A.Col (r.r_alias, f.Rschema.name), A.Alias_name f.Rschema.name, Some (offset + i)))
      (Array.to_list r.r_fields)
  in
  let ranges_with_offsets =
    let rec loop offset = function
      | [] -> []
      | r :: rest -> (offset, r) :: loop (offset + Rschema.arity r.r_fields) rest
    in
    loop 0 scope
  in
  List.concat_map
    (fun item ->
      match item with
      | A.Sel_star None ->
        if scope = [] then err "SELECT * requires a FROM clause";
        List.concat_map
          (fun (off, r) -> star_of_range off r)
          ranges_with_offsets
      | A.Sel_star (Some q) -> (
        match
          List.find_opt
            (fun (_, r) ->
              match r.r_alias with
              | Some a -> String.equal (norm a) (norm q)
              | None -> false)
            ranges_with_offsets
        with
        | Some (off, r) -> star_of_range off r
        | None -> err "unknown alias %s in %s.*" q q)
      | A.Sel_expr (e, alias) -> [ (e, alias, None) ])
    items

(* Walk an item expression in document order, registering every CHEAPEST
   SUM against its op builder. [bare] is set when the item consists of the
   whole CHEAPEST SUM (only then is the AS (cost, path) form legal). *)
and register_cheapests ctx ops item_index (e, alias, _direct) registrations =
  let resolve_op binding =
    match binding with
    | Some b -> (
      match
        List.find_opt
          (fun ob ->
            match ob.ob_alias with
            | Some a -> String.equal (norm a) (norm b)
            | None -> false)
          ops
      with
      | Some ob -> ob
      | None -> err "CHEAPEST SUM refers to unknown edge-table variable %s" b)
    | None -> (
      match ops with
      | [ ob ] -> ob
      | [] -> err "CHEAPEST SUM requires a REACHES predicate in the WHERE clause"
      | _ ->
        err
          "CHEAPEST SUM must name its edge-table variable when several REACHES predicates are present")
  in
  let register ~bare binding weight =
    let ob = resolve_op binding in
    let edge_scope = [ { r_alias = ob.ob_alias; r_fields = ob.ob_edge_fields } ] in
    let bweight = bind_expr ctx edge_scope plain_mode weight in
    require_numeric "CHEAPEST SUM weight" bweight.L.ty;
    let cost_ty = if D.equal bweight.L.ty D.TFloat then D.TFloat else D.TInt in
    let cost_name, path_name =
      match alias, bare with
      | A.Alias_pair (c, p), true -> (c, Some p)
      | A.Alias_pair _, false ->
        err "AS (cost, path) requires the item to be a bare CHEAPEST SUM"
      | A.Alias_name n, true -> (n, None)
      | (A.Alias_name _ | A.Alias_none), _ ->
        (Printf.sprintf "cost%d" (item_index + 1), None)
    in
    ob.ob_cheapests <-
      {
        L.weight = bweight;
        cost_name;
        cost_ty;
        path_name;
      }
      :: ob.ob_cheapests;
    (ob, cost_ty, path_name <> None)
  in
  (* document-order walk matching bind_expr's traversal *)
  let rec walk ~bare e =
    match e with
    | A.Cheapest_sum { binding; weight } ->
      let ob, cost_ty, has_path = register ~bare binding weight in
      registrations := (ob, cost_ty, has_path) :: !registrations
    | A.Lit _ | A.Param _ | A.Col _ | A.Star _ | A.Exists _
    | A.Scalar_subquery _ ->
      ()
    | A.Bin (_, a, b) ->
      walk ~bare:false a;
      walk ~bare:false b
    | A.Un (_, a) | A.Cast (a, _) -> walk ~bare:false a
    | A.Case (arms, default) ->
      List.iter
        (fun (c, v) ->
          walk ~bare:false c;
          walk ~bare:false v)
        arms;
      Option.iter (walk ~bare:false) default
    | A.Func (_, args) -> List.iter (walk ~bare:false) args
    | A.Is_null { arg; _ } -> walk ~bare:false arg
    | A.Between { arg; lo; hi; _ } ->
      walk ~bare:false arg;
      walk ~bare:false lo;
      walk ~bare:false hi
    | A.In_list { arg; candidates; _ } ->
      walk ~bare:false arg;
      List.iter (walk ~bare:false) candidates
    | A.In_query { arg; _ } -> walk ~bare:false arg
    | A.Agg_distinct (_, arg) -> walk ~bare:false arg
    | A.Like { arg; pattern; _ } ->
      walk ~bare:false arg;
      walk ~bare:false pattern
    | A.Row es -> List.iter (walk ~bare:false) es
    | A.Reaches _ -> err "REACHES cannot appear in the select list"
  in
  walk ~bare:true e

(* ------------------------------------------------------------------ *)
(* Aggregation lifting                                                 *)
(* ------------------------------------------------------------------ *)

(* Rewrite a bound expression over the *input* schema into one over the
   Aggregate output schema [keys ++ aggs]: group-key subtrees become key
   columns, Agg_call nodes become agg columns, anything else that still
   touches an input column is an error. *)
and lift_aggregates ~keys ~aggs (e : L.expr) : L.expr =
  let find_key e =
    let rec loop i = function
      | [] -> None
      | (k, _) :: rest -> if L.expr_equal k e then Some i else loop (i + 1) rest
    in
    loop 0 keys
  in
  let nkeys = List.length keys in
  let find_or_add_agg kind arg distinct ty =
    let rec loop i = function
      | [] ->
        let name = Printf.sprintf "agg%d" (List.length !aggs + 1) in
        aggs :=
          !aggs @ [ { L.kind; arg; distinct; out_name = name; out_ty = ty } ];
        i
      | (a : L.agg) :: rest ->
        if
          a.L.kind = kind && a.L.distinct = distinct
          && Option.equal L.expr_equal a.L.arg arg
        then i
        else loop (i + 1) rest
    in
    loop 0 !aggs
  in
  let rec lift e =
    match find_key e with
    | Some ki -> { e with L.node = L.Col ki }
    | None -> (
      match e.L.node with
      | L.Agg_call { kind; arg; distinct } ->
        let idx = find_or_add_agg kind arg distinct e.L.ty in
        { e with L.node = L.Col (nkeys + idx) }
      | L.Col _ ->
        err "column must appear in the GROUP BY clause or inside an aggregate"
      | L.Const _ | L.Subquery _ | L.Exists_sub _ | L.Outer_col _ -> e
      | L.Subquery_corr _ | L.Exists_corr _ | L.In_subquery_corr _ ->
        err
          "correlated subqueries are not supported in grouped queries or HAVING"

      | L.Bin (op, a, b) -> { e with L.node = L.Bin (op, lift a, lift b) }
      | L.Un (op, a) -> { e with L.node = L.Un (op, lift a) }
      | L.Cast (a, ty) -> { e with L.node = L.Cast (lift a, ty) }
      | L.Case (arms, default) ->
        {
          e with
          L.node =
            L.Case
              ( List.map (fun (c, v) -> (lift c, lift v)) arms,
                Option.map lift default );
        }
      | L.Call (b, args) -> { e with L.node = L.Call (b, List.map lift args) }
      | L.Is_null { negated; arg } ->
        { e with L.node = L.Is_null { negated; arg = lift arg } }
      | L.In_list { negated; arg; candidates } ->
        {
          e with
          L.node =
            L.In_list { negated; arg = lift arg; candidates = List.map lift candidates };
        }
      | L.In_subquery { negated; arg; sub } ->
        { e with L.node = L.In_subquery { negated; arg = lift arg; sub } }
      | L.Like { negated; arg; pattern } ->
        { e with L.node = L.Like { negated; arg = lift arg; pattern = lift pattern } })
  in
  lift e

(* ------------------------------------------------------------------ *)
(* Query binding                                                       *)
(* ------------------------------------------------------------------ *)

(* Does a query's FROM (or a nested subquery) reference table [name]?
   Used to tell genuinely recursive CTEs from plain ones declared under
   WITH RECURSIVE. *)
and query_refs_name name (q : A.query) =
  let module N = struct
    let norm = String.lowercase_ascii
  end in
  let target = N.norm name in
  let rec in_query (q : A.query) =
    List.exists in_from q.A.from
    || List.exists (fun (_, b) -> in_query b) q.A.setops
    || Option.fold ~none:false ~some:in_expr q.A.where
    || List.exists (fun (c : A.cte) -> in_query c.A.cte_query) q.A.ctes
  and in_from = function
    | A.From_table (t, _) -> String.equal (N.norm t) target
    | A.From_subquery (sub, _) -> in_query sub
    | A.From_unnest _ -> false
    | A.From_join (l, _, r, _) -> in_from l || in_from r
  and in_expr e =
    A.fold_expr
      (fun acc e ->
        acc
        ||
        match e with
        | A.Exists sub | A.Scalar_subquery sub | A.In_query { query = sub; _ }
          ->
          in_query sub
        | A.Reaches { edge = A.Ref_table t; _ } ->
          String.equal (N.norm t) target
        | A.Reaches { edge = A.Ref_subquery sub; _ } -> in_query sub
        | _ -> false)
      false e
  in
  in_query q

and bind_recursive_cte ctx (cte : A.cte) =
  let name = cte.A.cte_name in
  let base_q, op, step_q =
    match cte.A.cte_query.A.setops with
    | [ (((A.Union | A.Union_all) as op), step) ] ->
      ({ cte.A.cte_query with A.setops = [] }, op, step)
    | _ ->
      err
        "recursive CTE %s must be of the form: base-select UNION [ALL] \
         recursive-select"
        name
  in
  if cte.A.cte_query.A.order_by <> [] || cte.A.cte_query.A.limit <> None then
    err "recursive CTE %s cannot carry ORDER BY or LIMIT" name;
  if query_refs_name name base_q then
    err "recursive CTE %s: the base (first) branch cannot reference %s" name
      name;
  let base = bind_simple ctx base_q in
  let base_schema = L.schema_of base in
  let rec_schema =
    match cte.A.cte_cols with
    | None -> base_schema
    | Some names ->
      if List.length names <> Rschema.arity base_schema then
        err "CTE %s declares %d columns but its query produces %d" name
          (List.length names) (Rschema.arity base_schema);
      Array.of_list
        (List.mapi
           (fun i n -> { (Rschema.field base_schema i) with Rschema.name = n })
           names)
  in
  let self = L.Rec_ref { name = norm name; schema = rec_schema } in
  let step_ctx = { ctx with env = (norm name, self) :: ctx.env } in
  let step = bind_simple step_ctx step_q in
  let step_schema = L.schema_of step in
  if Rschema.arity step_schema <> Rschema.arity rec_schema then
    err "recursive CTE %s: branches have %d vs %d columns" name
      (Rschema.arity rec_schema) (Rschema.arity step_schema);
  Array.iteri
    (fun i (f : Rschema.field) ->
      let g = Rschema.field step_schema i in
      if not (D.equal f.Rschema.ty g.Rschema.ty) then
        err "recursive CTE %s: column %d has type %s in the base and %s in the step"
          name (i + 1) (D.name f.Rschema.ty) (D.name g.Rschema.ty))
    rec_schema;
  L.Rec_cte
    {
      name = norm name;
      base;
      step;
      distinct = (op = A.Union);
      schema = rec_schema;
    }

(* CTEs extend the environment in order. *)
and bind_ctes ctx ctes =
  List.fold_left
    (fun ctx (cte : A.cte) ->
      if cte.A.cte_recursive && query_refs_name cte.A.cte_name cte.A.cte_query
      then
        let plan = bind_recursive_cte ctx cte in
        { ctx with env = (norm cte.A.cte_name, plan) :: ctx.env }
      else bind_plain_cte ctx cte)
    ctx ctes

and bind_plain_cte ctx (cte : A.cte) =
  let plan = bind_query_in ctx cte.A.cte_query in
  let plan =
    match cte.A.cte_cols with
    | None -> plan
    | Some names ->
          let schema = L.schema_of plan in
          if List.length names <> Rschema.arity schema then
            err "CTE %s declares %d columns but its query produces %d"
              cte.A.cte_name (List.length names) (Rschema.arity schema);
          let items =
            List.mapi
              (fun i name ->
                ( { L.node = L.Col i; ty = (Rschema.field schema i).Rschema.ty },
                  name ))
              names
          in
          let out_schema =
            Array.of_list
              (List.mapi
                 (fun i name ->
                   let f = Rschema.field schema i in
                   { f with Rschema.name })
                 names)
          in
          L.Project { input = plan; items; schema = out_schema }
  in
  { ctx with env = (norm cte.A.cte_name, plan) :: ctx.env }

and bind_query_in ctx (q : A.query) : L.plan =
  if q.A.setops <> [] then bind_compound ctx q else bind_simple ctx q

(* Compound queries: UNION [ALL] / INTERSECT / EXCEPT over select cores,
   with ORDER BY / LIMIT applying to the combined result. *)
and bind_compound ctx (q : A.query) : L.plan =
  let ctx = bind_ctes ctx q.A.ctes in
  let strip branch =
    {
      branch with
      A.ctes = [];
      setops = [];
      order_by = [];
      limit = None;
      offset = None;
    }
  in
  let head = bind_simple ctx (strip q) in
  let plan =
    List.fold_left
      (fun left (op, branch) ->
        let right = bind_simple ctx (strip branch) in
        let ls = L.schema_of left and rs = L.schema_of right in
        if Rschema.arity ls <> Rschema.arity rs then
          err "set operation branches have %d vs %d columns"
            (Rschema.arity ls) (Rschema.arity rs);
        Array.iteri
          (fun i (lf : Rschema.field) ->
            let rf = Rschema.field rs i in
            if not (D.equal lf.Rschema.ty rf.Rschema.ty) then
              err "set operation: column %d has type %s on one side and %s on the other"
                (i + 1) (D.name lf.Rschema.ty) (D.name rf.Rschema.ty))
          ls;
        L.Set_op { op; left; right })
      head q.A.setops
  in
  (* ORDER BY binds over the combined output (names or positions). *)
  let out_schema = L.schema_of plan in
  let plan =
    match q.A.order_by with
    | [] -> plan
    | order_keys ->
      let out_scope = [ { r_alias = None; r_fields = out_schema } ] in
      let keys =
        List.map
          (fun (e, dir) ->
            let be =
              match e with
              | A.Lit (A.L_int k) ->
                if k < 1 || k > Rschema.arity out_schema then
                  err "ORDER BY position %d out of range" k;
                {
                  L.node = L.Col (k - 1);
                  ty = (Rschema.field out_schema (k - 1)).Rschema.ty;
                }
              | _ -> bind_expr ctx out_scope plain_mode e
            in
            (be, dir))
          order_keys
      in
      L.Sort { input = plan; keys }
  in
  match q.A.limit, q.A.offset with
  | None, None -> plan
  | limit, offset ->
    L.Limit { input = plan; limit; offset = Option.value offset ~default:0 }

(* A plain (non-compound) SELECT; its own CTEs are still honoured. *)
and bind_simple ctx (q : A.query) : L.plan =
  let ctx = bind_ctes ctx q.A.ctes in
  (* FROM *)
  let from_plan, scope = bind_from ctx q.A.from in
  (* WHERE: split conjuncts into graph predicates and plain filters. *)
  let reaches_asts, filter_conjuncts =
    match q.A.where with
    | None -> ([], [])
    | Some w ->
      let rec split e =
        match e with
        | A.Bin (A.And, a, b) ->
          let ra, fa = split a and rb, fb = split b in
          (ra @ rb, fa @ fb)
        | A.Reaches r -> ([ r ], [])
        | _ ->
          if A.collect_reaches e <> [] then
            err "REACHES must be a top-level conjunct of the WHERE clause";
          ([], [ e ])
      in
      split w
  in
  let bound_filters =
    List.map
      (fun e ->
        let be = bind_expr ctx scope plain_mode e in
        require_bool "WHERE clause" be.L.ty;
        be)
      filter_conjuncts
  in
  let plan =
    match L.conjoin bound_filters with
    | None -> from_plan
    | Some pred -> L.Filter { input = from_plan; pred }
  in
  (* Graph operators. *)
  let ops = List.mapi (fun id r -> bind_reaches ctx scope ~id r) reaches_asts in
  (* Select items: expand stars, register CHEAPEST SUMs. *)
  let items3 = expand_items scope q.A.items in
  let registrations = ref [] in
  List.iteri
    (fun i item -> register_cheapests ctx ops i item registrations)
    items3;
  let registrations = List.rev !registrations in
  (* fix registration order within each op: ob_cheapests was built reversed *)
  List.iter (fun ob -> ob.ob_cheapests <- List.rev ob.ob_cheapests) ops;
  (* Layout of the appended cost/path columns. *)
  let base_arity = scope_arity scope in
  let op_offsets =
    let rec loop off = function
      | [] -> []
      | ob :: rest ->
        let width =
          List.fold_left
            (fun acc (c : L.cheapest) ->
              acc + if c.L.path_name = None then 1 else 2)
            0 ob.ob_cheapests
        in
        (ob, off) :: loop (off + width) rest
    in
    loop base_arity ops
  in
  (* Build the registration queue consumed while binding items: for each
     registration (in document order) compute its cost/path columns. *)
  let queue = Queue.create () in
  let cursor = Hashtbl.create 8 in
  (* per-op running offset *)
  List.iter
    (fun (ob, cost_ty, has_path) ->
      let base =
        match List.find_opt (fun (o, _) -> o == ob) op_offsets with
        | Some (_, off) -> off
        | None -> assert false
      in
      let key = ob.ob_id in
      let used = Option.value (Hashtbl.find_opt cursor key) ~default:0 in
      let cost_col = base + used in
      let width = if has_path then 2 else 1 in
      Hashtbl.replace cursor key (used + width);
      Queue.add
        {
          reg_cost_col = cost_col;
          reg_cost_ty = cost_ty;
          reg_path_col = (if has_path then Some (cost_col + 1) else None);
        }
        queue)
    registrations;
  (* Apply the graph selects in order. *)
  let plan =
    List.fold_left
      (fun input ob ->
        let op =
          {
            L.edge = ob.ob_edge;
            edge_src = ob.ob_src_cols;
            edge_dst = ob.ob_dst_cols;
            src_exprs = ob.ob_src_exprs;
            dst_exprs = ob.ob_dst_exprs;
            cheapests = ob.ob_cheapests;
          }
        in
        L.Graph_select
          { input; op; schema = L.graph_select_schema ~input op })
      plan ops
  in
  let full_schema = L.schema_of plan in
  (* Bind the select items over the FROM scope; CHEAPEST SUM nodes resolve
     through the queue into the appended columns. *)
  let item_mode = { allow_agg = true; cheapest_queue = Some queue } in
  (* a pseudo-scope exposing the appended graph columns for binding *)
  let bound_items =
    List.mapi
      (fun i (e, alias, direct) ->
        let name =
          match alias with
          | A.Alias_name n -> n
          | A.Alias_pair (c, _) -> c
          | A.Alias_none -> (
            match e with
            | A.Col (_, n) -> n
            | A.Cheapest_sum _ -> Printf.sprintf "cost%d" (i + 1)
            | _ -> Printf.sprintf "col%d" (i + 1))
        in
        let bexpr =
          match direct with
          | Some idx ->
            (* star expansion resolved positionally already *)
            { L.node = L.Col idx; ty = (Rschema.field full_schema idx).Rschema.ty }
          | None -> bind_expr ctx scope item_mode e
        in
        (* the AS (cost, path) form appends the path as a second item *)
        let extra =
          match alias, e with
          | A.Alias_pair (_, pname), A.Cheapest_sum _ ->
            (* the path column sits right after the cost column *)
            (match bexpr.L.node with
            | L.Col cost_col ->
              let path_col = cost_col + 1 in
              [
                ( {
                    L.node = L.Col path_col;
                    ty = (Rschema.field full_schema path_col).Rschema.ty;
                  },
                  pname );
              ]
            | _ -> assert false)
          | A.Alias_pair _, _ ->
            err "AS (ident, ident) is only valid for CHEAPEST SUM"
          | _ -> []
        in
        ((bexpr, name) :: extra, ()))
      items3
    |> List.concat_map fst
  in
  (* Aggregation. *)
  let group_keys =
    List.map
      (fun e ->
        (* GROUP BY <n> refers to the n-th select item, as in ORDER BY *)
        let e =
          match e with
          | A.Lit (A.L_int k) -> (
            match List.nth_opt items3 (k - 1) with
            | Some (item_e, _, _) -> item_e
            | None -> err "GROUP BY position %d out of range" k)
          | _ -> e
        in
        let be = bind_expr ctx scope plain_mode e in
        let name =
          match e with A.Col (_, n) -> n | _ -> "key"
        in
        (be, name))
      q.A.group_by
  in
  let bound_having =
    Option.map
      (fun h ->
        let bh = bind_expr ctx scope { item_mode with cheapest_queue = None } h in
        require_bool "HAVING" bh.L.ty;
        bh)
      q.A.having
  in
  let has_agg =
    group_keys <> []
    || List.exists (fun (e, _) -> L.contains_agg e) bound_items
    || Option.fold ~none:false ~some:L.contains_agg bound_having
  in
  let plan, proj_items =
    if not has_agg then (plan, bound_items)
    else begin
      (* dedupe key names *)
      let keys =
        List.mapi
          (fun i (e, n) -> (e, if n = "key" then Printf.sprintf "key%d" (i + 1) else n))
          group_keys
      in
      let aggs = ref [] in
      let lifted_items =
        List.map (fun (e, n) -> (lift_aggregates ~keys ~aggs e, n)) bound_items
      in
      let lifted_having =
        Option.map (lift_aggregates ~keys ~aggs) bound_having
      in
      let agg_schema =
        Array.of_list
          (List.map
             (fun (e, n) ->
               let nested =
                 match e.L.node with
                 | L.Col i -> (Rschema.field full_schema i).Rschema.nested
                 | _ -> None
               in
               { Rschema.name = n; ty = e.L.ty; nested })
             keys
          @ List.map
              (fun (a : L.agg) ->
                { Rschema.name = a.L.out_name; ty = a.L.out_ty; nested = None })
              !aggs)
      in
      let agg_plan =
        L.Aggregate { input = plan; keys; aggs = !aggs; schema = agg_schema }
      in
      let agg_plan =
        match lifted_having with
        | None -> agg_plan
        | Some pred -> L.Filter { input = agg_plan; pred }
      in
      (agg_plan, lifted_items)
    end
  in
  if (not has_agg) && bound_having <> None then
    err "HAVING requires GROUP BY or aggregates";
  (* Projection. *)
  let input_schema = L.schema_of plan in
  let proj_schema =
    Array.of_list
      (List.map
         (fun ((e : L.expr), name) ->
           let nested =
             if D.equal e.L.ty D.TPath then
               match e.L.node with
               | L.Col i -> (Rschema.field input_schema i).Rschema.nested
               | _ -> None
             else None
           in
           { Rschema.name; ty = e.L.ty; nested })
         proj_items)
  in
  (* ORDER BY binds over the projection's output; keys not visible there
     fall back to the pre-projection scope and ride along as hidden
     projection columns, dropped after the sort (non-aggregated,
     non-DISTINCT queries only, as in standard SQL). *)
  let order_keys =
    List.map
      (fun (e, dir) ->
        let out_scope = [ { r_alias = None; r_fields = proj_schema } ] in
        let key =
          match e with
          | A.Lit (A.L_int k) ->
            if k < 1 || k > Rschema.arity proj_schema then
              err "ORDER BY position %d out of range" k;
            `Output
              {
                L.node = L.Col (k - 1);
                ty = (Rschema.field proj_schema (k - 1)).Rschema.ty;
              }
          | _ -> (
            match bind_expr ctx out_scope plain_mode e with
            | be -> `Output be
            | exception Bind_error _ when (not has_agg) && not q.A.distinct ->
              `Hidden (bind_expr ctx scope plain_mode e))
        in
        (key, dir))
      q.A.order_by
  in
  let hidden =
    List.filter_map
      (fun (key, _) -> match key with `Hidden be -> Some be | `Output _ -> None)
      order_keys
  in
  let plan =
    if hidden = [] then
      L.Project { input = plan; items = proj_items; schema = proj_schema }
    else begin
      let hidden_items =
        List.mapi (fun i be -> (be, Printf.sprintf "$sort%d" i)) hidden
      in
      let wide_schema =
        Rschema.append proj_schema
          (Array.of_list
             (List.map
                (fun ((be : L.expr), n) ->
                  { Rschema.name = n; ty = be.L.ty; nested = None })
                hidden_items))
      in
      L.Project
        { input = plan; items = proj_items @ hidden_items; schema = wide_schema }
    end
  in
  let plan = if q.A.distinct then L.Distinct plan else plan in
  let plan =
    match order_keys with
    | [] -> plan
    | _ ->
      let base = List.length proj_items in
      let next_hidden = ref 0 in
      let keys =
        List.map
          (fun (key, dir) ->
            match key with
            | `Output be -> (be, dir)
            | `Hidden be ->
              let idx = base + !next_hidden in
              incr next_hidden;
              ({ L.node = L.Col idx; ty = be.L.ty }, dir))
          order_keys
      in
      L.Sort { input = plan; keys }
  in
  (* drop the hidden sort columns again *)
  let plan =
    if hidden = [] then plan
    else
      L.Project
        {
          input = plan;
          items =
            List.mapi
              (fun i (f : Rschema.field) ->
                ({ L.node = L.Col i; ty = f.Rschema.ty }, f.Rschema.name))
              (Array.to_list proj_schema);
          schema = proj_schema;
        }
  in
  match q.A.limit, q.A.offset with
  | None, None -> plan
  | limit, offset ->
    L.Limit { input = plan; limit; offset = Option.value offset ~default:0 }

let bind_query ~catalog ~params q =
  Telemetry.Trace.span "bind" (fun () ->
      bind_query_in { catalog; params; env = []; outer_scope = [] } q)

(* Bind a scalar expression against a single table's columns (UPDATE SET /
   UPDATE-DELETE WHERE clauses). *)
let bind_over_table ~catalog ~params ~schema e =
  let ctx = { catalog; params; env = []; outer_scope = [] } in
  let scope =
    [ { r_alias = None; r_fields = Rschema.of_storage schema } ]
  in
  bind_expr ctx scope plain_mode e

(* ------------------------------------------------------------------ *)
(* INSERT ... VALUES                                                   *)
(* ------------------------------------------------------------------ *)

let bind_values ~catalog ~params ~schema ~columns rows =
  let ctx = { catalog; params; env = []; outer_scope = [] } in
  let arity = Storage.Schema.arity schema in
  let positions =
    match columns with
    | None -> List.init arity Fun.id
    | Some cols ->
      List.map
        (fun c ->
          match Storage.Schema.index_of schema c with
          | Some i -> i
          | None -> err "unknown column %s in INSERT" c)
        cols
  in
  List.map
    (fun row ->
      if List.length row <> List.length positions then
        err "INSERT row has %d values, expected %d" (List.length row)
          (List.length positions);
      let cells = Array.make arity V.Null in
      List.iter2
        (fun pos e ->
          let be = bind_expr ctx [] plain_mode e in
          let v = Const_eval.eval_exn be in
          let target_ty = (Storage.Schema.field schema pos).Storage.Schema.ty in
          let v =
            match V.cast v target_ty with
            | Ok v' -> v'
            | Error m -> err "INSERT: %s" m
          in
          cells.(pos) <- v)
        positions row;
      cells)
    rows
