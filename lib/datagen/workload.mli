(** Query-parameter workloads, following the paper's methodology: "the
    query parameters were randomly generated out of the set of the
    generated persons and according to a uniform distribution" (§4). *)

(** [random_pairs ~seed ~ids n] — [n] ⟨source, destination⟩ person-id
    pairs, uniform over [ids]. Source ≠ destination is guaranteed
    whenever [ids] contains at least two distinct values (destinations
    are rejection-sampled); with a single distinct value the pair
    degenerates to it. Same seed ⇒ identical pairs. *)
val random_pairs : seed:int -> ids:int array -> int -> (int * int) array

(** [pairs_table pairs] — the pairs as a table (s INTEGER, d INTEGER),
    the shape used to batch many shortest-path computations into one query
    (Figure 1b's experiment). *)
val pairs_table : (int * int) array -> Storage.Table.t

(** [params_of_pair (s, d)] — host parameters for the single-pair form. *)
val params_of_pair : int * int -> Storage.Value.t array
