module V = Storage.Value

let random_pairs ~seed ~ids n =
  if Array.length ids = 0 then invalid_arg "Workload.random_pairs: no ids";
  let rng = Splitmix.create ~seed in
  let m = Array.length ids in
  (* source ≠ destination is only satisfiable when [ids] holds at least
     two distinct *values* — |ids| > 1 is not enough if it repeats one id *)
  let distinct_exists =
    m > 1 && Array.exists (fun v -> v <> ids.(0)) ids
  in
  (* Rejection-sample the destination: conditioning a uniform draw on
     "≠ a" keeps it uniform over the remaining values. The retry bound
     only triggers on arrays dominated by duplicates of [a]; the
     fallback scans from a uniform start, so every non-[a] value keeps
     positive probability and the stream stays a pure function of the
     seed. *)
  let other a =
    let rec draw tries =
      let b = ids.(Splitmix.int rng ~bound:m) in
      if b <> a then b
      else if tries < 64 then draw (tries + 1)
      else begin
        let start = Splitmix.int rng ~bound:m in
        let b = ref a and k = ref 0 in
        while !b = a && !k < m do
          b := ids.((start + !k) mod m);
          incr k
        done;
        !b
      end
    in
    draw 0
  in
  Array.init n (fun _ ->
      let a = ids.(Splitmix.int rng ~bound:m) in
      let b =
        if distinct_exists then other a else ids.(Splitmix.int rng ~bound:m)
      in
      (a, b))

let pairs_table pairs =
  let schema =
    Storage.Schema.of_pairs
      [ ("s", Storage.Dtype.TInt); ("d", Storage.Dtype.TInt) ]
  in
  let t = Storage.Table.create schema in
  Array.iter
    (fun (a, b) -> Storage.Table.append_row t [| V.Int a; V.Int b |])
    pairs;
  t

let params_of_pair (s, d) = [| V.Int s; V.Int d |]
