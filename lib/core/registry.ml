(* Counters, gauges and log-scale histograms.  See registry.mli. *)

(* Geometric bucket upper bounds: 4 per decade over [1e-7, 1e3), then
   +Inf.  10 decades * 4 = 40 finite bounds. *)
let bounds =
  Array.init 40 (fun i -> 1e-7 *. (10.0 ** (float_of_int (i + 1) /. 4.0)))

let nbuckets = Array.length bounds + 1 (* last bucket = +Inf *)

let bucket_of v =
  (* Linear scan: 40 entries, called once per observation (per
     statement, not per row). *)
  let rec go i =
    if i >= Array.length bounds then i else if v <= bounds.(i) then i else go (i + 1)
  in
  go 0

type hist = {
  counts : int array; (* length nbuckets *)
  mutable h_sum : float;
  mutable h_count : int;
  mutable h_max : float;
}

type cell =
  | Counter_c of { mutable c : int }
  | Gauge_c of { mutable g : float }
  | Hist_c of hist

type entry = { e_name : string; e_help : string; cell : cell }

type t = {
  tbl : (string, entry) Hashtbl.t;
  mutable order : entry list; (* reversed registration order *)
}

let create () = { tbl = Hashtbl.create 32; order = [] }

let find_or_add t name help mk =
  match Hashtbl.find_opt t.tbl name with
  | Some e -> e
  | None ->
      let e = { e_name = name; e_help = help; cell = mk () } in
      Hashtbl.replace t.tbl name e;
      t.order <- e :: t.order;
      e

let inc t ?(help = "") name v =
  let e = find_or_add t name help (fun () -> Counter_c { c = 0 }) in
  match e.cell with Counter_c c -> c.c <- c.c + v | _ -> ()

let set_gauge t ?(help = "") name v =
  let e = find_or_add t name help (fun () -> Gauge_c { g = 0.0 }) in
  match e.cell with Gauge_c g -> g.g <- v | _ -> ()

let observe t ?(help = "") name v =
  let e =
    find_or_add t name help (fun () ->
        Hist_c { counts = Array.make nbuckets 0; h_sum = 0.0; h_count = 0; h_max = neg_infinity })
  in
  match e.cell with
  | Hist_c h ->
      let b = bucket_of v in
      h.counts.(b) <- h.counts.(b) + 1;
      h.h_sum <- h.h_sum +. v;
      h.h_count <- h.h_count + 1;
      if v > h.h_max then h.h_max <- v
  | _ -> ()

type percentiles = {
  count : int;
  sum : float;
  p50 : float;
  p90 : float;
  p99 : float;
  max : float;
}

let quantile h q =
  (* Upper bound of the bucket holding the q-th ranked observation,
     clamped to the exact max. *)
  if h.h_count = 0 then 0.0
  else begin
    let rank = Stdlib.max 1 (int_of_float (Float.ceil (q *. float_of_int h.h_count))) in
    let cum = ref 0 and ans = ref h.h_max in
    (try
       for i = 0 to nbuckets - 1 do
         cum := !cum + h.counts.(i);
         if !cum >= rank then begin
           ans := if i < Array.length bounds then bounds.(i) else h.h_max;
           raise Exit
         end
       done
     with Exit -> ());
    Float.min !ans h.h_max
  end

let hist_percentiles h =
  {
    count = h.h_count;
    sum = h.h_sum;
    p50 = quantile h 0.50;
    p90 = quantile h 0.90;
    p99 = quantile h 0.99;
    max = (if h.h_count = 0 then 0.0 else h.h_max);
  }

let percentiles t name =
  match Hashtbl.find_opt t.tbl name with
  | Some { cell = Hist_c h; _ } when h.h_count > 0 -> Some (hist_percentiles h)
  | _ -> None

type metric =
  | Counter of int
  | Gauge of float
  | Histogram of percentiles

let fold t ~init ~f =
  List.fold_left
    (fun acc e ->
      let m =
        match e.cell with
        | Counter_c c -> Counter c.c
        | Gauge_c g -> Gauge g.g
        | Hist_c h -> Histogram (hist_percentiles h)
      in
      f acc e.e_name ~help:e.e_help m)
    init (List.rev t.order)

(* --- Prometheus text exposition v0.0.4 ----------------------------- *)

let prom_float f =
  if Float.is_nan f then "NaN"
  else if f = infinity then "+Inf"
  else if f = neg_infinity then "-Inf"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.9g" f

let to_prometheus t =
  let b = Buffer.create 1024 in
  List.iter
    (fun e ->
      let help = if e.e_help = "" then e.e_name else e.e_help in
      Buffer.add_string b (Printf.sprintf "# HELP %s %s\n" e.e_name help);
      (match e.cell with
      | Counter_c c ->
          Buffer.add_string b (Printf.sprintf "# TYPE %s counter\n" e.e_name);
          Buffer.add_string b (Printf.sprintf "%s %d\n" e.e_name c.c)
      | Gauge_c g ->
          Buffer.add_string b (Printf.sprintf "# TYPE %s gauge\n" e.e_name);
          Buffer.add_string b (Printf.sprintf "%s %s\n" e.e_name (prom_float g.g))
      | Hist_c h ->
          Buffer.add_string b (Printf.sprintf "# TYPE %s histogram\n" e.e_name);
          let cum = ref 0 in
          Array.iteri
            (fun i n ->
              cum := !cum + n;
              Buffer.add_string b
                (Printf.sprintf "%s_bucket{le=\"%s\"} %d\n" e.e_name
                   (prom_float bounds.(i)) !cum))
            (Array.sub h.counts 0 (Array.length bounds));
          cum := !cum + h.counts.(nbuckets - 1);
          Buffer.add_string b
            (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" e.e_name !cum);
          Buffer.add_string b
            (Printf.sprintf "%s_sum %s\n" e.e_name (prom_float h.h_sum));
          Buffer.add_string b (Printf.sprintf "%s_count %d\n" e.e_name h.h_count)))
    (List.rev t.order);
  Buffer.contents b

(* --- Human table ---------------------------------------------------- *)

let ms f = Printf.sprintf "%.3fms" (1000.0 *. f)

let to_table t =
  let rows =
    fold t ~init:[] ~f:(fun acc name ~help:_ m ->
        let kind, value =
          match m with
          | Counter c -> ("counter", string_of_int c)
          | Gauge g -> ("gauge", prom_float g)
          | Histogram p ->
              ( "histogram",
                if p.count = 0 then "count=0"
                else
                  Printf.sprintf "count=%d p50=%s p90=%s p99=%s max=%s sum=%s"
                    p.count (ms p.p50) (ms p.p90) (ms p.p99) (ms p.max)
                    (ms p.sum) )
        in
        (kind, name, value) :: acc)
    |> List.rev
  in
  if rows = [] then "(no metrics recorded)\n"
  else begin
    let w1 = List.fold_left (fun w (k, _, _) -> Stdlib.max w (String.length k)) 0 rows in
    let w2 = List.fold_left (fun w (_, n, _) -> Stdlib.max w (String.length n)) 0 rows in
    let b = Buffer.create 512 in
    List.iter
      (fun (k, n, v) ->
        Buffer.add_string b (Printf.sprintf "%-*s  %-*s  %s\n" w1 k w2 n v))
      rows;
    Buffer.contents b
  end
