(** Save/load a whole database as a directory of CSV files plus a schema
    manifest. The on-disk format is deliberately plain (one [<table>.csv]
    per table, [_manifest.csv] describing columns and types) so datasets
    can be produced or inspected with ordinary tools.

    Path-typed columns refuse to persist, which is the paper's own rule
    for nested tables: "it cannot be permanently stored into a physical
    table" (§3.3) — flatten with [UNNEST] first. *)

(** [save db ~dir] — write every catalog table, atomically: the files are
    rendered into a temp sibling directory ([<dir>.tmp.<pid>]), each
    fsynced, and the whole directory renamed into place, so a crash (or
    an armed fault at the [persist_write]/[persist_rename] sites) leaves
    either the previous save or the new one, never a half-written mix.

    Refuses to overwrite an existing non-empty directory that has no
    [_manifest.csv] — such a directory is not a sqlgraph save. *)
val save : Db.t -> dir:string -> (unit, Error.t) result

(** [load ~dir] — a fresh database containing every table of a saved
    directory. *)
val load : dir:string -> (Db.t, Error.t) result
