type budget = {
  timeout_ms : float option;
  max_rows : int option;
  max_steps : int option;
  max_frontier : int option;
  max_paths : int option;
}

let no_limits =
  {
    timeout_ms = None;
    max_rows = None;
    max_steps = None;
    max_frontier = None;
    max_paths = None;
  }

let budget ?timeout_ms ?max_rows ?max_steps ?max_frontier ?max_paths () =
  { timeout_ms; max_rows; max_steps; max_frontier; max_paths }

exception
  Resource_error of {
    kind : Error.resource_kind;
    spent : float;
    limit : float;
    site : string;
  }

type t = {
  b : budget;
  started : float; (* Unix.gettimeofday at start *)
  mutable cancelled : bool;
  mutable checks : int;
  mutable steps : int;
  mutable peak_frontier : int;
  mutable paths : int;
}

let start b =
  {
    b;
    started = Unix.gettimeofday ();
    cancelled = false;
    checks = 0;
    steps = 0;
    peak_frontier = 0;
    paths = 0;
  }

let cancel t = t.cancelled <- true
let cancelled t = t.cancelled
let elapsed_ms t = (Unix.gettimeofday () -. t.started) *. 1000.

let remaining_ms t =
  Option.map (fun limit -> Float.max 0. (limit -. elapsed_ms t)) t.b.timeout_ms

let blow kind ~spent ~limit ~site =
  raise (Resource_error { kind; spent; limit; site })

(* The checkpoint body. Every call: consult the fault harness, honour the
   cancellation token, fold the progress deltas into the counters, then
   test each configured limit. The wall clock is read on every call —
   vsyscall-cheap — because the kernels already throttle to one call per
   ~64 loop iterations. *)
let check_progress t (p : Graph.Cancel.progress) =
  t.checks <- t.checks + 1;
  Fault.hit ~site:p.Graph.Cancel.c_site;
  let site = p.Graph.Cancel.c_site in
  if t.cancelled then
    blow Error.Cancelled ~spent:(elapsed_ms t) ~limit:0. ~site;
  t.steps <- t.steps + p.Graph.Cancel.c_steps;
  t.paths <- t.paths + p.Graph.Cancel.c_paths;
  if p.Graph.Cancel.c_frontier > t.peak_frontier then
    t.peak_frontier <- p.Graph.Cancel.c_frontier;
  (match t.b.max_steps with
  | Some l when t.steps > l ->
    blow Error.Steps ~spent:(float_of_int t.steps) ~limit:(float_of_int l)
      ~site
  | _ -> ());
  (match t.b.max_frontier with
  | Some l when p.Graph.Cancel.c_frontier > l ->
    blow Error.Frontier
      ~spent:(float_of_int p.Graph.Cancel.c_frontier)
      ~limit:(float_of_int l) ~site
  | _ -> ());
  (match t.b.max_paths with
  | Some l when t.paths > l ->
    blow Error.Paths ~spent:(float_of_int t.paths) ~limit:(float_of_int l)
      ~site
  | _ -> ());
  (match t.b.max_rows with
  | Some l when p.Graph.Cancel.c_rows > l ->
    blow Error.Rows
      ~spent:(float_of_int p.Graph.Cancel.c_rows)
      ~limit:(float_of_int l) ~site
  | _ -> ());
  match t.b.timeout_ms with
  | Some l ->
    let e = elapsed_ms t in
    if e > l then blow Error.Timeout ~spent:e ~limit:l ~site
  | None -> ()

let checkpoint t : Graph.Cancel.checkpoint = fun p -> check_progress t p

let check t ~site ?steps ?frontier ?rows ?paths () =
  Graph.Cancel.report (checkpoint t) ~site ?steps ?frontier ?rows ?paths ()

type counters = {
  checks : int;
  steps : int;
  peak_frontier : int;
  paths : int;
  elapsed_ms : float;
  remaining_ms : float option;
}

let counters (t : t) =
  {
    checks = t.checks;
    steps = t.steps;
    peak_frontier = t.peak_frontier;
    paths = t.paths;
    elapsed_ms = elapsed_ms t;
    remaining_ms = remaining_ms t;
  }
