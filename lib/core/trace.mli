(** Session-wide structured-span recorder.

    A process-global, bounded ring buffer of begin/end/instant events.
    Each event carries the statement ("query") id, a span id, the parent
    span id, the recording domain's id (one timeline track per domain)
    and an optional key/value attribute list.  The recorder is designed
    for an always-compiled-in, normally-off hot path:

    - when disabled, {!begin_span}/{!end_span}/{!instant} reduce to one
      atomic load and return immediately — no allocation, no closure;
    - when enabled, recording an event writes into preallocated
      struct-of-array ring slots (only an attribute list, when supplied,
      allocates);
    - the ring never grows: once [capacity] events have been written the
      oldest are overwritten ({!dropped} counts how many).

    Span nesting is tracked per domain with a domain-local stack, so
    concurrently-recording domains produce independently well-formed
    timelines.  {!span} closes its span on any exception (including the
    governor's cooperative-cancellation unwind).

    The clock is injectable ({!set_clock}) so tests can fix timestamps;
    the default is [Unix.gettimeofday].

    This module lives in the bottom-layer [telemetry] library and must
    not depend on any other sqlgraph library. *)

type clock = unit -> float

val set_clock : clock -> unit
(** Replace the time source (seconds, as a float).  Affects subsequent
    events only. *)

val now : unit -> float
(** Read the current (possibly injected) clock. *)

val set_enabled : bool -> unit

val enabled : unit -> bool
(** One atomic load; the guard used by every instrumentation site. *)

val configure : capacity:int -> unit
(** Re-allocate the ring with room for [capacity] events (clamped to at
    least 16) and {!clear} it.  Default capacity: 65536. *)

val clear : unit -> unit
(** Drop all recorded events and reset the dropped-event counter.  Span
    and query id counters are {e not} reset; ids stay unique across the
    session. *)

(** {1 Query ids} *)

val next_query : unit -> int
(** Allocate a fresh statement id and make it current; every event
    recorded until the next call is stamped with it.  Called by [Db] at
    statement start (spawned domains inherit the current id). *)

val current_query : unit -> int

(** {1 Recording} *)

val begin_span : ?parent:int -> ?attrs:(string * string) list -> string -> int
(** Open a span named [name] on the calling domain's track and return
    its id (or [-1] when disabled).  The parent defaults to the
    innermost span still open on this domain ([-1] for a root).  Pass
    [?parent] explicitly to link a spawned domain's root span to the
    coordinator span that forked it. *)

val end_span : ?attrs:(string * string) list -> int -> unit
(** Close span [id].  Any child spans of [id] still open on this domain
    are closed first (innermost out), so an exceptional unwind that
    skips intermediate [end_span] calls cannot leave the track's stack
    corrupt.  [end_span (-1)] is a no-op. *)

val instant : ?attrs:(string * string) list -> string -> unit
(** Record a zero-duration marker on the calling domain's track. *)

val span : ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a
(** [span name f] = begin, run [f], end — the end is under
    [Fun.protect], so the span closes on any exception (cancellation
    included).  When disabled this is just [f ()]. *)

val current_span : unit -> int
(** Innermost open span id on the calling domain, [-1] if none.
    Capture this before [Domain.spawn] to parent the child's root. *)

(** {1 Per-thread tracks}

    Span nesting defaults to one stack per {e domain}, but the server
    runs one {e systhread} per client session, all inside one domain —
    their interleaved statements would corrupt a shared stack.  A
    session thread therefore registers its own track: a private timeline
    id plus a private span stack, keyed by [Thread.id].  Unregistered
    threads keep the domain-local behaviour; the registration table is
    only consulted while at least one thread is registered. *)

val register_thread_track : int -> unit
(** [register_thread_track id] — give the calling thread its own span
    stack and stamp its events with track [id] (the server uses the
    session id, so exported traces show one timeline per session). *)

val unregister_thread_track : unit -> unit
(** Drop the calling thread's registration (idempotent). *)

(** {1 Inspection and export} *)

type kind = Begin | End | Instant

type event = {
  ev_kind : kind;
  ev_ts : float;  (** seconds, from the injected clock *)
  ev_name : string;
  ev_track : int;  (** recording domain's id *)
  ev_span : int;
  ev_parent : int;  (** parent span id, [-1] for roots *)
  ev_query : int;  (** statement id, see {!next_query} *)
  ev_attrs : (string * string) list;
}

val events : unit -> event list
(** Snapshot of the ring, oldest first.  Intended for between-statement
    readers (tests, exporters); a concurrent writer may race the
    snapshot, never crash it. *)

val dropped : unit -> int
(** Events overwritten since the last {!clear}. *)

val self_ms_by_name : query:int -> (string * float) list
(** Aggregate completed spans of statement [query] by name and return
    [(name, self-time ms)] sorted descending — self time is the span's
    duration minus its direct children's.  Feeds the slow-query log's
    "top spans" field. *)

val to_catapult : unit -> string
(** Render the ring as Chrome trace-event ("catapult") JSON — an object
    with a [traceEvents] array of ["B"]/["E"]/["i"] events (timestamps
    in microseconds, one [tid] per domain) — loadable in
    chrome://tracing and Perfetto. *)

val write_catapult : path:string -> unit
(** [to_catapult] to a file (truncates). *)
