(** The public database API.

    {[
      let db = Db.create () in
      Db.exec_exn db "CREATE TABLE friends (src INTEGER, dst INTEGER)";
      Db.exec_exn db "INSERT INTO friends VALUES (1, 2), (2, 3)";
      let r =
        Db.query_exn db
          ~params:[| Int 1; Int 3 |]
          "SELECT CHEAPEST SUM(1) WHERE ? REACHES ? OVER friends EDGE (src, dst)"
      in
      print_string (Resultset.to_string r)
    ]}

    Host parameters ([?]) are substituted at bind time, so a statement is
    compiled per execution. All state is in-memory. *)

type t

(** Debug tracing source ("sqlgraph.db"): per-query bind/rewrite/execute
    timings and graph statistics at [Debug] level. *)
val log_src : Logs.src

(** [create ()] — an empty in-memory database.  [?indices] shares an
    existing graph-index cache instead of creating a private one: the
    server hands every session database the shared database's instance,
    so a graph built by any session (or warmed by the replica's apply
    loop) is a cache hit for all of them.  The shared instance is
    thread-safe; coherence across catalogs relies on version mirroring
    (see {!load_table}'s [?version]). *)
val create : ?indices:Executor.Graph_index.t -> unit -> t

val catalog : t -> Storage.Catalog.t

val indices : t -> Executor.Graph_index.t
(** The graph-index cache (pass to [create ?indices] to share). *)

(** [load_table db ~name table] — register a pre-built columnar table
    (bulk loading path used by the generators and benchmarks). Replaces
    any existing table of that name, bumping its version — or, with
    [?version], setting it explicitly so a session catalog mirrors the
    publisher's version and the shared graph-index cache stays coherent
    across sessions. *)
val load_table : ?version:int -> t -> name:string -> Storage.Table.t -> unit

(** [warm_graph_indexes db] — pre-build every enabled graph index over
    the current catalog (no-op for keys already fresh); returns how many
    were built.  The replica's apply loop warms after catch-up so the
    first post-failover path query hits the cache. *)
val warm_graph_indexes : t -> int

(** Outcome of a statement. *)
type exec_outcome =
  | Created  (** CREATE TABLE *)
  | Dropped  (** DROP TABLE *)
  | Inserted of int  (** INSERT: rows added *)
  | Updated of int  (** UPDATE: rows changed *)
  | Deleted of int  (** DELETE: rows removed *)
  | Selected of Resultset.t  (** a SELECT ran through {!exec} *)
  | Explained of string  (** an EXPLAIN statement: the rendered plan *)
  | Option_set of string * int  (** SET name = n: the applied value *)
  | Began  (** BEGIN [TRANSACTION]: tables snapshotted *)
  | Committed  (** COMMIT: snapshot discarded *)
  | Rolled_back  (** ROLLBACK: tables restored, graph caches cleared *)

(** [exec db ?params ?budget ?governor sql] — run any single statement
    under a fresh {!Governor} built from [budget] (default
    {!Governor.no_limits}).  Budget exhaustion, cancellation and
    injected faults surface as [Error.Resource_error]; the session — and
    any open transaction snapshot — survives.  Pass [?governor] to keep
    a handle on the statement's governor while it runs (the CLI's SIGINT
    handler and the server's shutdown path call {!Governor.cancel} on it
    from another thread); it overrides [budget]. *)
val exec :
  t ->
  ?params:Storage.Value.t array ->
  ?budget:Governor.budget ->
  ?governor:Governor.t ->
  string ->
  (exec_outcome, Error.t) result

(** [exec_exn] — [exec] raising [Failure] with the rendered error. *)
val exec_exn :
  t ->
  ?params:Storage.Value.t array ->
  ?budget:Governor.budget ->
  string ->
  exec_outcome

(** [exec_script db ?budget sql] — run a [;]-separated script (no
    parameters). The budget is per statement, not per script. *)
val exec_script :
  t -> ?budget:Governor.budget -> string -> (exec_outcome list, Error.t) result

(** [exec_script_each db ?budget ~f sql] — like {!exec_script}, but
    invoke [f] after every statement with its rendered SQL text and its
    result, so per-statement observers (the CLI's metrics sinks and
    slow-query log) see failures and intermediate outcomes instead of an
    all-or-nothing list.  Execution stops at the first error (returned),
    or when [f] answers [`Stop] (returns [Ok ()]). *)
val exec_script_each :
  t ->
  ?budget:Governor.budget ->
  f:(sql:string -> (exec_outcome, Error.t) result -> [ `Continue | `Stop ]) ->
  string ->
  (unit, Error.t) result

(** [query db ?params ?optimize ?budget sql] — run a SELECT. [optimize]
    overrides the rewriter configuration (used by the optimizer
    ablations). *)
val query :
  t ->
  ?params:Storage.Value.t array ->
  ?optimize:Relalg.Rewriter.options ->
  ?budget:Governor.budget ->
  string ->
  (Resultset.t, Error.t) result

val query_exn :
  t ->
  ?params:Storage.Value.t array ->
  ?optimize:Relalg.Rewriter.options ->
  ?budget:Governor.budget ->
  string ->
  Resultset.t

(** [protect f] — run [f] under the same exception-to-[Error.t] mapping
    statements get: parse/bind/runtime errors, [Resource_error], injected
    faults, CSV and I/O errors, [Stack_overflow], [Out_of_memory]. Used
    by {!Csv} and the CLI so auxiliary operations (imports) fail like
    statements instead of killing the session. *)
val protect : (unit -> 'a) -> ('a, Error.t) result

(** [explain db ?params ?optimize sql] — the bound, rewritten plan as an
    indented operator tree. *)
val explain :
  t ->
  ?params:Storage.Value.t array ->
  ?optimize:Relalg.Rewriter.options ->
  string ->
  (string, Error.t) result

(** Graph indices (DESIGN.md §6 — the paper's "future work" §6): pre-build
    and cache the graph of a base edge table so queries skip
    construction. Invalidated automatically when the table changes. *)

val create_graph_index :
  t -> table:string -> src:string -> dst:string -> (unit, Error.t) result

val drop_graph_index :
  t -> table:string -> src:string -> dst:string -> (unit, Error.t) result

(** [last_stats db] — graph build/traversal counters of the most recent
    {!query}/{!exec} (experiment A1's instrumentation).  Cleared when a
    statement fails, so a consumer can never mistake the previous
    statement's counters for the failed one's. *)
val last_stats : t -> Executor.Interp.stats option

(** Session traversal parallelism ([SET parallelism = n] / CLI
    [--domains]): the number of domains {!Graph.Runtime.run_pairs} may
    spread source groups over. Clamped to >= 1; results are identical to
    serial execution by construction (disjoint outcome slots). *)

val parallelism : t -> int
val set_parallelism : t -> int -> unit

(** [registry db] — the session's cumulative metrics registry.  Every
    statement run through {!exec}/{!exec_script}/{!query} adds its
    latency to the [sqlgraph_statement_seconds] histogram and folds its
    {!Executor.Interp.stats} counters in; render with
    {!Telemetry.Registry.to_table} ([\metrics]),
    {!Telemetry.Registry.to_prometheus} ([--metrics-out]) or
    {!Metrics.registry_json} (the JSON [session] section). *)
val registry : t -> Telemetry.Registry.t

(** Slow-query threshold in milliseconds ([SET slow_query_ms = n] / CLI
    [--slow-query-ms]); [None] = disabled.  The Db stores the setting;
    the CLI compares statement latency against it and appends NDJSON
    records to the slow-query log. *)

val slow_query_ms : t -> int option
val set_slow_query_ms : t -> int option -> unit

(** Read-only (inspection) mode: when set, every catalog-mutating
    statement (INSERT/UPDATE/DELETE/CREATE/DROP) is refused with a
    runtime error {e before} it applies — even inside an open
    transaction.  Set by {!Wal.open_dir} [~readonly:true] and by the
    CLI's [--readonly] flag. *)

val readonly : t -> bool
val set_readonly : t -> bool -> unit

(** Durability hooks (installed by {!Wal.attach}; [None] = plain
    in-memory session).  The Db drives them around catalog-mutating
    statements so write-ahead logging stays outside the executor:

    - autocommit DML: [dur_log] runs before the statement applies
      (log-before-apply); [dur_abort] erases the record if the apply
      fails.
    - DML inside BEGIN..COMMIT: applied statements are buffered with
      [dur_buffer]; [dur_commit] flushes the buffer plus a commit marker
      under one fsync at COMMIT (group commit) — if that flush fails the
      Db rolls back to the BEGIN snapshot before surfacing the error —
      and [dur_rollback] discards the buffer at ROLLBACK. *)
type durability = {
  dur_log : sql:string -> params:Storage.Value.t array -> unit;
  dur_abort : unit -> unit;
  dur_buffer : sql:string -> params:Storage.Value.t array -> unit;
  dur_commit : unit -> unit;
  dur_rollback : unit -> unit;
}

val set_durability : t -> durability option -> unit

(** [in_transaction db] — a BEGIN snapshot is open (checkpointing is
    refused mid-transaction). *)
val in_transaction : t -> bool

(** {1 Introspection (DESIGN.md §14)}

    Every Db resolves read-only virtual system tables under reserved
    [sqlgraph_*] names: [sqlgraph_stat_statements] (per-fingerprint
    cumulative statement stats), [sqlgraph_stat_graph] (graph indices
    and cache hit/miss counters), [sqlgraph_stat_wal] (live when a WAL
    store is attached), [sqlgraph_stat_sessions] (populated by the
    server) and [sqlgraph_metrics] (one row per registry counter/gauge
    value and histogram percentile).  They compose with ordinary
    SELECT/WHERE/ORDER BY but are refused by DML/DDL, excluded from
    BEGIN snapshots and never persisted. *)

(** [is_reserved_name n] — [n] is in the reserved [sqlgraph_*] system
    namespace (case-insensitive). *)
val is_reserved_name : string -> bool

(** [register_virtual_table db ~name provider] — register (or replace)
    a virtual table materialized fresh on every scan.  Used by
    {!Wal.open_dir} (live [sqlgraph_stat_wal]) and the server (live
    [sqlgraph_stat_sessions] / combined [sqlgraph_metrics] on each
    session's private Db). *)
val register_virtual_table :
  t -> name:string -> (unit -> Storage.Table.t) -> unit

(** [stat_store db] — the bounded per-fingerprint statement-stats store
    behind [sqlgraph_stat_statements].  {!exec}, {!exec_script_each} and
    {!query} record every statement's fingerprint, latency (the exact
    delta the [sqlgraph_statement_seconds] histogram observes), row
    count and traversal counters here. *)
val stat_store : t -> Stat_store.t

(** [set_stat_store db store] — share a store across Dbs (the server
    points every session's private Db at the writer Db's store, so the
    whole server workload lands in one view). *)
val set_stat_store : t -> Stat_store.t -> unit

(** [reset_statement_stats db] — zero the fingerprint store ([\stat
    reset]); the metrics registry is deliberately untouched. *)
val reset_statement_stats : t -> unit

(** [last_query_id db] — the query id ([<fingerprint-hex>:<seq>], with
    [seq] monotone per Db) of the most recent statement, as stamped on
    its trace span; [None] before the first statement. *)
val last_query_id : t -> string option

(** [last_fingerprint db] — the 16-hex-digit fingerprint of the most
    recent statement's normalized text. *)
val last_fingerprint : t -> string option

(** Schemas of the provider-overridable system tables, shared by the
    default (empty) providers and the live ones in {!Wal} and the
    server. *)

val stat_wal_schema : Storage.Schema.t
val stat_sessions_schema : Storage.Schema.t
val stat_replication_schema : Storage.Schema.t
