(* Csv.Csv_error is re-exported from here (exception aliasing) so that
   Db.guard — which Csv itself depends on — can catch it by name. *)
exception Csv_error of string

type resource_kind =
  | Timeout
  | Rows
  | Steps
  | Frontier
  | Paths
  | Cancelled
  | Fault

let resource_kind_name = function
  | Timeout -> "timeout"
  | Rows -> "rows"
  | Steps -> "steps"
  | Frontier -> "frontier"
  | Paths -> "paths"
  | Cancelled -> "cancelled"
  | Fault -> "fault"

type t =
  | Parse_error of { message : string; line : int; col : int }
  | Bind_error of string
  | Runtime_error of string
  | Resource_error of {
      kind : resource_kind;
      spent : float;
      limit : float;
      site : string;
    }
  | Io_error of string
  | Internal_error of string

let to_string = function
  | Parse_error { message; line; col } ->
    Printf.sprintf "parse error at line %d, column %d: %s" line col message
  | Bind_error m -> "semantic error: " ^ m
  | Runtime_error m -> "runtime error: " ^ m
  | Resource_error { kind = Fault; spent; limit = _; site } ->
    Printf.sprintf "resource error: injected fault at %s (check %.0f)" site
      spent
  | Resource_error { kind = Cancelled; site; _ } ->
    Printf.sprintf "resource error: query cancelled at %s" site
  | Resource_error { kind = Timeout; spent; limit; site } ->
    Printf.sprintf
      "resource error: timeout exceeded at %s (%.1fms elapsed, limit %.1fms)"
      site spent limit
  | Resource_error { kind; spent; limit; site } ->
    Printf.sprintf "resource error: %s budget exceeded at %s (%.0f of %.0f)"
      (resource_kind_name kind) site spent limit
  | Io_error m -> "io error: " ^ m
  | Internal_error m -> "internal error: " ^ m

let pp ppf t = Format.pp_print_string ppf (to_string t)
