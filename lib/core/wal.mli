(** Crash-safe durability: a per-database write-ahead log plus atomic
    checkpoints over the {!Persist} CSV format (DESIGN.md §11).

    A data directory holds a generation-numbered pair — [checkpoint-%06d/]
    (a {!Persist} save) and [wal-%06d.log] (every committed DML statement
    since that checkpoint) — plus a [CURRENT] pointer naming the live
    generation. Opening the directory loads the checkpoint, replays the
    log (truncating at the first torn or checksum-failing record) and
    installs {!Db.durability} hooks so further committed DML is logged
    before it is acknowledged.

    Log format: an 8-byte magic header ["SQLGWAL1"], then length-prefixed
    records ([u32 LE payload length | u32 LE crc32 | payload]); the
    payload is a kind byte ('A' autocommit, 'S' in-transaction statement,
    'C' commit marker), a parameter vector, and the statement's SQL text.
    Recovery discards a trailing run of 'S' records with no 'C' marker —
    a transaction whose COMMIT was never acknowledged.

    Invariant (the fuzzer's oracle): after a crash at any I/O boundary,
    reopening yields the state produced by a prefix of the acknowledged
    statements, possibly extended by the single statement in flight at
    the crash. No acknowledged statement is ever lost, and no statement
    applies partially.

    Fault sites (see {!Fault}): [wal_append], [wal_fsync], [wal_torn]
    (leaves half a record and poisons the store), [wal_truncate],
    [checkpoint], [wal_rotate], [current_rename], plus {!Persist}'s
    [persist_write]/[persist_rename]. *)

type t
(** An open store: the live log's fd, generation, and append offset. *)

type recovery = {
  rec_gen : int;  (** generation loaded *)
  rec_replayed : int;  (** log records applied *)
  rec_skipped : int;
      (** replayed statements that errored (they failed when first
          executed too) or were discarded as an uncommitted transaction *)
  rec_truncated_bytes : int;
      (** corrupt tail bytes removed — nonzero means the log was torn *)
}

(** [open_dir ?fsync dir] — open (creating if missing) a data directory:
    load the current checkpoint, replay the log, truncate any corrupt
    tail, and return the store, the recovered database (durability hooks
    already installed) and a recovery summary. [~fsync:false] skips every
    fsync — throughput mode for benchmarks; crash safety then depends on
    the OS page cache. Refuses a non-empty directory that is not a
    sqlgraph data directory. *)
val open_dir : ?fsync:bool -> string -> (t * Db.t * recovery, Error.t) result

(** [checkpoint t db] — write the full state as generation g+1 (an atomic
    {!Persist.save}), start a fresh log, then atomically move the
    [CURRENT] pointer and delete generation g. Refused inside an open
    transaction. On failure the session stays on generation g with its
    log intact — nothing is lost. *)
val checkpoint : t -> Db.t -> (unit, Error.t) result

(** [close t] — fsync (when enabled) and close the live log. *)
val close : t -> unit

(** [crash_for_testing t] — drop the fd without fsync or repair,
    simulating [kill -9]: written bytes survive exactly as a killed
    process would leave them. *)
val crash_for_testing : t -> unit

val dir : t -> string
val gen : t -> int

val wal_path : t -> string
(** Path of the live log file (tests tear its tail off). *)

val crc32 : string -> int
(** IEEE CRC32 of a string (checksum of every record's payload);
    [crc32 "123456789" = 0xCBF43926]. *)
