(** Crash-safe durability: a per-database write-ahead log plus atomic
    checkpoints over the {!Persist} CSV format (DESIGN.md §11).

    A data directory holds a generation-numbered pair — [checkpoint-%06d/]
    (a {!Persist} save) and [wal-%06d.log] (every committed DML statement
    since that checkpoint) — plus a [CURRENT] pointer naming the live
    generation. Opening the directory loads the checkpoint, replays the
    log (truncating at the first torn or checksum-failing record) and
    installs {!Db.durability} hooks so further committed DML is logged
    before it is acknowledged.

    Log format: an 8-byte magic header ["SQLGWAL1"], then length-prefixed
    records ([u32 LE payload length | u32 LE crc32 | payload]); the
    payload is a kind byte ('A' autocommit, 'S' in-transaction statement,
    'C' commit marker), a parameter vector, and the statement's SQL text.
    Recovery discards a trailing run of 'S' records with no 'C' marker —
    a transaction whose COMMIT was never acknowledged.

    Invariant (the fuzzer's oracle): after a crash at any I/O boundary,
    reopening yields the state produced by a prefix of the acknowledged
    statements, possibly extended by the single statement in flight at
    the crash. No acknowledged statement is ever lost, and no statement
    applies partially.

    Fault sites (see {!Fault}): [wal_append], [wal_fsync], [wal_torn]
    (leaves half a record and poisons the store), [wal_truncate],
    [checkpoint], [wal_rotate], [current_rename], [group_fsync] (the
    server's shared batch fsync), plus {!Persist}'s
    [persist_write]/[persist_rename]. *)

type t
(** An open store: the live log's fd, generation, and append offset. *)

type recovery = {
  rec_gen : int;  (** generation loaded *)
  rec_replayed : int;  (** log records applied *)
  rec_skipped : int;
      (** replayed statements that errored (they failed when first
          executed too) or were discarded as an uncommitted transaction *)
  rec_truncated_bytes : int;
      (** corrupt tail bytes removed — nonzero means the log was torn *)
}

(** [open_dir ?fsync ?readonly dir] — open (creating if missing) a data
    directory: load the current checkpoint, replay the log, truncate any
    corrupt tail, and return the store, the recovered database
    (durability hooks already installed) and a recovery summary.
    [~fsync:false] skips every fsync — throughput mode for benchmarks;
    crash safety then depends on the OS page cache. Refuses a non-empty
    directory that is not a sqlgraph data directory.

    [~readonly:true] is inspection mode: recovery runs purely in memory —
    the directory is never written (no [CURRENT] rewrite, no stale-file
    GC, no tail truncation), the returned database refuses DML
    ({!Db.set_readonly}), and every append path of the store raises.
    Safe to point at a directory another process is actively serving. *)
val open_dir :
  ?fsync:bool ->
  ?readonly:bool ->
  ?replica:bool ->
  string ->
  (t * Db.t * recovery, Error.t) result

(** [checkpoint t db] — write the full state as generation g+1 (an atomic
    {!Persist.save}), start a fresh log, then atomically move the
    [CURRENT] pointer and delete generation g. Refused inside an open
    transaction. On failure the session stays on generation g with its
    log intact — nothing is lost. *)
val checkpoint : t -> Db.t -> (unit, Error.t) result

(** [close t] — fsync (when enabled) and close the live log. *)
val close : t -> unit

(** [crash_for_testing t] — drop the fd without fsync or repair,
    simulating [kill -9]: written bytes survive exactly as a killed
    process would leave them. *)
val crash_for_testing : t -> unit

val dir : t -> string
val gen : t -> int

val readonly : t -> bool
(** The store was opened with [~readonly:true]. *)

(** {1 Group commit (lib/server)}

    The server multiplexes many sessions over one store.  In deferred
    mode the per-statement fsync is suppressed; instead a group-commit
    leader — holding the server's writer lock — calls {!flush_now},
    captures {!logical_end} as the batch's flush target, releases the
    lock, and calls {!fsync_now} once.  Every session whose appends lie
    at or before the target is then durable and can be acknowledged:
    one fsync per batch instead of one per commit. *)

val set_deferred_sync : t -> bool -> unit
(** Enable/disable deferred (group-commit) mode.  While enabled, the
    durability hooks append and flush but never fsync. *)

val logical_end : t -> int
(** The log's logical end: durable bytes plus the unflushed buffer.
    After {!flush_now} this equals the bytes handed to the OS. *)

val flush_now : t -> unit
(** Write the buffered tail to the fd (no fsync).  Call with the
    server's writer lock held so no statement is mid-append. *)

val fsync_now : t -> unit
(** Fsync the log fd (fault site [group_fsync]); a no-op when the store
    was opened [~fsync:false].  Safe to call without the writer lock. *)

val wal_path : t -> string
(** Path of the live log file (tests tear its tail off). *)

val crc32 : string -> int
(** IEEE CRC32 of a string (checksum of every record's payload);
    [crc32 "123456789" = 0xCBF43926]. *)

(** {1 Replication (lib/server/replication.ml, DESIGN.md §15)}

    A hot standby mirrors the primary's data directory byte for byte:
    the primary re-reads durable log ranges and ships them raw; the
    replica reassembles complete frames from the byte stream, appends
    them verbatim to its own log (same offsets), and applies each
    statement to its in-memory database.  Fault site: [promote_fence]. *)

type kind = Autocommit | Txn_stmt | Commit_marker
(** Record kinds: 'A' applies immediately, 'S' buffers until its 'C'
    commit marker (a trailing 'S' run with no marker is an
    unacknowledged transaction and must not be applied). *)

type record = kind * Storage.Value.t array * string
(** A decoded record: kind, parameter vector, SQL text. *)

exception Corrupt of string
(** A frame failed its length or checksum validation. *)

val header_size : int
(** Bytes of the ["SQLGWAL1"] magic header — the logical offset of the
    first record in every log file. *)

val encode_record :
  kind:kind -> sql:string -> params:Storage.Value.t array -> string
(** Render one record as its framed wire/log bytes
    ([u32 LE length | u32 LE crc32 | payload]). *)

(** Reassembles framed records from a byte stream split at arbitrary
    chunk boundaries (mid-header, mid-crc, mid-payload).  Frames surface
    only once complete and checksum-verified, so partial bytes never
    reach the replica's log. *)
module Reassembly : sig
  type buf

  val create : unit -> buf

  val feed : buf -> string -> unit
  (** Append a received chunk. *)

  val pop : buf -> (string * record) option
  (** Next complete frame as [(raw bytes, decoded record)], or [None]
      when only a partial frame is buffered.  Raises {!Corrupt} on a
      checksum or length violation (the stream is unrecoverable). *)

  val pending : buf -> int
  (** Buffered bytes not yet consumed (nonzero = a frame in flight). *)

  val clear : buf -> unit
  (** Drop buffered bytes — promotion fences a partial frame away. *)
end

val read_range : t -> pos:int -> len:int -> string
(** Re-read [len] bytes of the live log starting at byte [pos], through
    a fresh read-only fd.  The range must be flushed ([pos + len] at or
    below the durable end) — shipping only ever reads behind the group
    commit's fsync target. *)

val append_frames : t -> count:int -> string -> unit
(** Append [count] complete, already-framed records verbatim (the
    replica's log-before-apply step).  Flushes and, when fsync is
    enabled, syncs — a crash between append and apply replays from the
    local log. *)

val replay : Db.t -> record list -> int * int
(** Apply decoded records to [db] with the recovery semantics ('S'
    buffers until 'C'); returns [(replayed, skipped)]. *)

val open_replica :
  ?fsync:bool -> string -> (t * Db.t * recovery, Error.t) result
(** Open (creating if missing) a data directory as a hot standby:
    normal recovery and tail truncation, but the returned database
    refuses session DML ({!Db.set_readonly}) and no durability hooks are
    installed — {!append_frames} is the only write path until
    {!promote}. *)

val reset_generation : t -> gen:int -> unit
(** Full-resync fence: after the caller has written a complete shipped
    checkpoint for [gen] into the directory, start a fresh log for that
    generation, atomically repoint [CURRENT], and GC stale files. *)

val promote : t -> Db.t -> (unit, Error.t) result
(** Promote a replica store opened with {!open_replica}: fence the
    replicated generation behind a checkpoint of the applied state
    (discarding any shipped-but-uncommitted transaction tail), install
    durability hooks, and clear the database's read-only flag.  Fault
    site [promote_fence]. *)

val checkpoint_path : dir:string -> gen:int -> string
(** The checkpoint directory for generation [gen] under [dir]. *)

val write_file_atomic : string -> string -> unit
(** Write a file via tmp + fsync + rename (+ directory fsync) — the
    replica uses it to land shipped checkpoint files. *)
