(** The per-query resource governor.

    The paper's [REACHES] / [CHEAPEST SUM] operators turn one SQL
    statement into unbounded graph traversals, so a served system needs
    every statement to be *bounded* and *interruptible*. A governor is a
    set of budgets plus a cooperative cancellation token; its
    {!checkpoint} closure is threaded — as an opaque
    {!Graph.Cancel.checkpoint} — through the interpreter, the vectorized
    evaluator and every graph kernel, which report progress at cheap
    intervals. When a budget is exhausted (or {!cancel} was called, or a
    {!Fault} is armed) the checkpoint raises {!Resource_error}, the stack
    unwinds out of the statement, and [Db.guard] maps the exception into
    [Error.Resource_error]: the statement fails, the session and any open
    transaction snapshot survive.

    [Db.exec ?budget] / [Db.query ?budget] create one governor per
    statement; embedders driving the executor directly can {!start} their
    own and pass {!checkpoint} to [Executor.Interp.create_ctx]. *)

(** Per-query limits; [None] everywhere ({!no_limits}) means ungoverned
    (the checkpoint then only counts, serves {!cancel} and {!Fault}). *)
type budget = {
  timeout_ms : float option;  (** wall-clock deadline, milliseconds *)
  max_rows : int option;  (** result / recursive-CTE accumulated rows *)
  max_steps : int option;  (** total traversal / operator steps *)
  max_frontier : int option;  (** BFS queue / Dijkstra heap size *)
  max_paths : int option;  (** all-paths enumeration count *)
}

val no_limits : budget

val budget :
  ?timeout_ms:float ->
  ?max_rows:int ->
  ?max_steps:int ->
  ?max_frontier:int ->
  ?max_paths:int ->
  unit ->
  budget

exception
  Resource_error of {
    kind : Error.resource_kind;
    spent : float;
    limit : float;
    site : string;
  }

type t

(** [start budget] — a fresh governor; the wall clock starts now. *)
val start : budget -> t

(** [cancel t] — set the cooperative cancellation token: the next
    checkpoint raises with kind [Error.Cancelled]. Safe to call from a
    signal handler or another domain. *)
val cancel : t -> unit

val cancelled : t -> bool

(** [checkpoint t] — the closure to thread into the execution layers. *)
val checkpoint : t -> Graph.Cancel.checkpoint

(** [check t ~site ?steps ?frontier ?rows ?paths ()] — fire one checkpoint
    directly (used by e.g. [Baselines.Sql_bfs] loop drivers and by [Db]
    for the final result-row test). *)
val check :
  t ->
  site:string ->
  ?steps:int ->
  ?frontier:int ->
  ?rows:int ->
  ?paths:int ->
  unit ->
  unit

val elapsed_ms : t -> float

(** [remaining_ms t] — time left under the deadline (clamped at 0);
    [None] when the budget has no timeout. *)
val remaining_ms : t -> float option

(** Observability snapshot (merged into [Executor.Interp.stats] by [Db]). *)
type counters = {
  checks : int;
  steps : int;
  peak_frontier : int;
  paths : int;
  elapsed_ms : float;
  remaining_ms : float option;
}

val counters : t -> counters
