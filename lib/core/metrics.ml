type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of json list
  | Obj of (string * json) list

(* NaN (e.g. gov_budget_remaining_ms with no timeout) and infinities have
   no JSON spelling; emit null rather than an invalid document. *)
let num f = if Float.is_finite f then Float f else Null

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Defence in depth: [num] maps non-finite floats to [Null] at
   construction time, but a [Float nan] built directly must still never
   produce an invalid document, so the emitter repeats the check (pinned
   by the round-trip property in test/test_telemetry.ml). *)
let float_repr f =
  if not (Float.is_finite f) then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.17g" f

let to_string j =
  let buf = Buffer.create 256 in
  let rec go indent j =
    let pad n = String.make (2 * n) ' ' in
    match j with
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (string_of_bool b)
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f ->
      (* %.17g round-trips doubles; trim is not worth the dependency *)
      Buffer.add_string buf (float_repr f)
    | String s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
      Buffer.add_string buf "[\n";
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf (pad (indent + 1));
          go (indent + 1) item)
        items;
      Buffer.add_char buf '\n';
      Buffer.add_string buf (pad indent);
      Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
      Buffer.add_string buf "{\n";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf (pad (indent + 1));
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf "\": ";
          go (indent + 1) v)
        fields;
      Buffer.add_char buf '\n';
      Buffer.add_string buf (pad indent);
      Buffer.add_char buf '}'
  in
  go 0 j;
  Buffer.contents buf

(* One-line rendering for NDJSON sinks (--json-metrics-append, the
   slow-query log): same data as [to_string], no newlines. *)
let to_compact_string j =
  let buf = Buffer.create 256 in
  let rec go j =
    match j with
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (string_of_bool b)
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f -> Buffer.add_string buf (float_repr f)
    | String s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
    | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          go item)
        items;
      Buffer.add_char buf ']'
    | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf "\":";
          go v)
        fields;
      Buffer.add_char buf '}'
  in
  go j;
  Buffer.contents buf

(* The [session] section of sqlgraph-metrics-v1: the Db registry's
   cumulative counters/gauges/histograms. *)
let registry_json reg =
  let fields =
    Telemetry.Registry.fold reg ~init:[] ~f:(fun acc name ~help:_ m ->
        let v =
          match m with
          | Telemetry.Registry.Counter c -> Int c
          | Telemetry.Registry.Gauge g -> num g
          | Telemetry.Registry.Histogram p ->
            Obj
              [
                ("count", Int p.Telemetry.Registry.count);
                ("sum", num p.Telemetry.Registry.sum);
                ("p50", num p.Telemetry.Registry.p50);
                ("p90", num p.Telemetry.Registry.p90);
                ("p99", num p.Telemetry.Registry.p99);
                ("max", num p.Telemetry.Registry.max);
              ]
        in
        (name, v) :: acc)
  in
  Obj (List.rev fields)

let stats_json (s : Executor.Interp.stats) =
  Obj
    [
      ("graph_build_seconds", num s.Executor.Interp.graph_build_seconds);
      ("graph_traverse_seconds", num s.Executor.Interp.graph_traverse_seconds);
      ("graphs_built", Int s.Executor.Interp.graphs_built);
      ("graphs_reused", Int s.Executor.Interp.graphs_reused);
      ( "build_phases",
        Obj
          [
            ("dict_seconds", num s.Executor.Interp.build_dict_seconds);
            ("encode_seconds", num s.Executor.Interp.build_encode_seconds);
            ("csr_seconds", num s.Executor.Interp.build_csr_seconds);
          ] );
      ( "graph_index",
        Obj
          [
            ("hits", Int s.Executor.Interp.index_hits);
            ("misses", Int s.Executor.Interp.index_misses);
          ] );
      ( "traversal",
        Obj
          [
            ("searches", Int s.Executor.Interp.trav_searches);
            ("settled", Int s.Executor.Interp.trav_settled);
            ("peak_frontier", Int s.Executor.Interp.trav_peak_frontier);
            ("edges_scanned", Int s.Executor.Interp.trav_edges);
            ("batched_waves", Int s.Executor.Interp.trav_waves);
            ("dir_switches", Int s.Executor.Interp.trav_dir_switches);
          ] );
      ( "scheduler",
        Obj
          [
            ("tasks", Int s.Executor.Interp.trav_tasks);
            ("steals", Int s.Executor.Interp.trav_steals);
            ("splits", Int s.Executor.Interp.trav_splits);
          ] );
      ( "workspace_pool",
        Obj
          [
            ("hits", Int s.Executor.Interp.pool_hits);
            ("misses", Int s.Executor.Interp.pool_misses);
          ] );
      ( "evaluation",
        Obj
          [
            ("vectorized_ops", Int s.Executor.Interp.vec_ops);
            ("row_ops", Int s.Executor.Interp.row_ops);
          ] );
      ( "governor",
        Obj
          [
            ("checks", Int s.Executor.Interp.gov_checks);
            ("steps", Int s.Executor.Interp.gov_steps);
            ("peak_frontier", Int s.Executor.Interp.gov_peak_frontier);
            ("paths", Int s.Executor.Interp.gov_paths);
            ( "budget_remaining_ms",
              num s.Executor.Interp.gov_budget_remaining_ms );
          ] );
    ]

(* The sqlgraph_metrics system table (DESIGN.md §14): one row per
   counter/gauge value and per histogram percentile, so registry state
   is SQL-queryable.  [registry_table] concatenates several registries
   (the server renders its shared server registry after the writer Db's
   session registry). *)
let registry_schema =
  Storage.Schema.of_pairs
    [
      ("name", Storage.Dtype.TStr);
      ("kind", Storage.Dtype.TStr);
      ("field", Storage.Dtype.TStr);
      ("value", Storage.Dtype.TFloat);
      ("help", Storage.Dtype.TStr);
    ]

let registry_rows reg =
  let module V = Storage.Value in
  let cell f = if Float.is_finite f then V.Float f else V.Null in
  Telemetry.Registry.fold reg ~init:[] ~f:(fun acc name ~help m ->
      let row kind field v = [ V.Str name; V.Str kind; V.Str field; v; V.Str help ] in
      match m with
      | Telemetry.Registry.Counter c ->
        row "counter" "value" (V.Float (float_of_int c)) :: acc
      | Telemetry.Registry.Gauge g -> row "gauge" "value" (cell g) :: acc
      | Telemetry.Registry.Histogram p ->
        let open Telemetry.Registry in
        row "histogram" "max" (cell p.max)
        :: row "histogram" "p99" (cell p.p99)
        :: row "histogram" "p90" (cell p.p90)
        :: row "histogram" "p50" (cell p.p50)
        :: row "histogram" "sum" (cell p.sum)
        :: row "histogram" "count" (V.Float (float_of_int p.count))
        :: acc)
  |> List.rev

let registry_table regs =
  Storage.Table.of_rows registry_schema (List.concat_map registry_rows regs)

let write_file ~path j =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_string j);
      output_char oc '\n')
