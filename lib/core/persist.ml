let manifest_file = "_manifest.csv"

let guard f =
  match f () with
  | v -> Ok v
  | exception Sys_error m -> Error (Error.Runtime_error m)
  | exception Csv.Csv_error m -> Error (Error.Runtime_error m)
  | exception Relalg.Scalar.Runtime_error m -> Error (Error.Runtime_error m)
  | exception Invalid_argument m -> Error (Error.Runtime_error m)
  | exception Unix.Unix_error (e, fn, arg) ->
    Error
      (Error.Runtime_error
         (Printf.sprintf "%s %s: %s" fn arg (Unix.error_message e)))
  | exception Fault.Injected { site; checks } ->
    Error
      (Error.Resource_error
         {
           kind = Error.Fault;
           spent = float_of_int checks;
           limit = float_of_int checks;
           site;
         })

(* fsync a file or directory by path (directory fsync persists the
   entry rename itself, not just the bytes). *)
let fsync_path path =
  let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () -> Unix.fsync fd)

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let write_file_synced path text =
  let fd =
    Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
  in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      let n = String.length text in
      let written = ref 0 in
      while !written < n do
        written :=
          !written + Unix.write_substring fd text !written (n - !written)
      done;
      Unix.fsync fd)

(* Render every table into (filename, contents) pairs, re-raising the
   paper's §3.3 rule for path-typed columns before any byte is written. *)
let render db =
  let catalog = Db.catalog db in
  let manifest = Buffer.create 256 in
  Buffer.add_string manifest "table,column,type\n";
  let files =
    List.map
      (fun name ->
        let table = Option.get (Storage.Catalog.find catalog name) in
        let schema = Storage.Table.schema table in
        List.iter
          (fun (f : Storage.Schema.field) ->
            if Storage.Dtype.equal f.Storage.Schema.ty Storage.Dtype.TPath
            then
              raise
                (Relalg.Scalar.Runtime_error
                   (Printf.sprintf
                      "table %s column %s: paths cannot be permanently \
                       stored (flatten with UNNEST first)"
                      name f.Storage.Schema.name));
            Buffer.add_string manifest
              (Printf.sprintf "%s,%s,%s\n" name f.Storage.Schema.name
                 (Storage.Dtype.name f.Storage.Schema.ty)))
          (Storage.Schema.fields schema);
        (name ^ ".csv", Resultset.to_csv (Resultset.of_table table)))
      (Storage.Catalog.names catalog)
  in
  files @ [ (manifest_file, Buffer.contents manifest) ]

(* Atomic save: render everything, write into a temp sibling directory
   (fsyncing each file), then rename into place. A crash — or an armed
   fault at the persist_write/persist_rename sites — leaves either the
   previous save or the new one, never a half-written mix. An existing
   non-empty target that carries no manifest is refused outright: it is
   not a sqlgraph save, and overwriting it would scribble CSVs over
   arbitrary user data. *)
let save db ~dir =
  guard (fun () ->
      if Sys.file_exists dir then begin
        if not (Sys.is_directory dir) then
          raise (Sys_error (dir ^ ": exists and is not a directory"));
        if
          Array.length (Sys.readdir dir) > 0
          && not (Sys.file_exists (Filename.concat dir manifest_file))
        then
          raise
            (Sys_error
               (Printf.sprintf
                  "refusing to overwrite %s: directory is not empty and has \
                   no %s (not a sqlgraph save)"
                  dir manifest_file))
      end;
      let files = render db in
      let tmp = Printf.sprintf "%s.tmp.%d" dir (Unix.getpid ()) in
      rm_rf tmp;
      Sys.mkdir tmp 0o755;
      (try
         Fault.hit ~site:"persist_write";
         List.iter
           (fun (name, text) ->
             write_file_synced (Filename.concat tmp name) text)
           files;
         fsync_path tmp;
         Fault.hit ~site:"persist_rename";
         if Sys.file_exists dir then begin
           let old = Printf.sprintf "%s.old.%d" dir (Unix.getpid ()) in
           rm_rf old;
           Sys.rename dir old;
           (try Sys.rename tmp dir
            with e ->
              (* best effort: put the previous save back *)
              (try Sys.rename old dir with _ -> ());
              raise e);
           rm_rf old
         end
         else Sys.rename tmp dir
       with e ->
         (try rm_rf tmp with _ -> ());
         raise e);
      (* persist the directory entry itself *)
      try fsync_path (Filename.dirname dir) with _ -> ())

let load ~dir =
  guard (fun () ->
      let manifest_text =
        In_channel.with_open_text
          (Filename.concat dir manifest_file)
          In_channel.input_all
      in
      let rows =
        match Csv.parse_string manifest_text with
        | _header :: rows -> rows
        | [] -> raise (Csv.Csv_error "empty manifest")
      in
      (* group manifest rows by table, preserving column order *)
      let tables = Hashtbl.create 8 in
      let order = ref [] in
      List.iter
        (fun row ->
          match row with
          | [ table; column; ty_name ] ->
            let ty =
              match Storage.Dtype.of_name ty_name with
              | Some ty -> ty
              | None ->
                raise (Csv.Csv_error ("unknown type in manifest: " ^ ty_name))
            in
            (match Hashtbl.find_opt tables table with
            | Some cols -> Hashtbl.replace tables table ((column, ty) :: cols)
            | None ->
              order := table :: !order;
              Hashtbl.replace tables table [ (column, ty) ])
          | _ -> raise (Csv.Csv_error "malformed manifest row"))
        rows;
      let db = Db.create () in
      List.iter
        (fun table ->
          let cols = List.rev (Hashtbl.find tables table) in
          let schema = Storage.Schema.of_pairs cols in
          let text =
            In_channel.with_open_text
              (Filename.concat dir (table ^ ".csv"))
              In_channel.input_all
          in
          Db.load_table db ~name:table (Csv.table_of_string ~schema text))
        (List.rev !order);
      db)
