(** Deterministic fault injection for the governor's checkpoints and the
    durability subsystem's I/O sites.

    Every cooperative checkpoint the {!Governor} fires first consults this
    module, so arming a fault exercises the exact unwind path a real
    budget exhaustion would take — mid-BFS, mid-Dijkstra, mid-statement,
    inside an open transaction — without depending on timing. The {!Wal}
    and {!Persist} layers additionally consult it at every append, fsync,
    rename and truncate, so the crash-recovery fuzzer can kill a durable
    session at any I/O boundary. Tests arm it with {!set}/{!set_specs};
    end-to-end runs arm it with the [SQLGRAPH_FAULT] environment variable
    (read by the CLI via {!arm_from_env}).

    Any number of specs may be armed at once (semicolon-separated in the
    environment variable). Each spec is one-shot: it disarms itself
    immediately before raising, so recovery code (rollback, error
    rendering, the next statement) runs fault-free — unless another armed
    spec covers a site the recovery path itself visits, which is how the
    fuzzer reaches second-order failure paths (truncate-on-abort,
    store poisoning). *)

type spec =
  | After_checks of int  (** raise at the Nth checkpoint, any site *)
  | At_site of string
      (** raise at the first checkpoint of the named site: "interp",
          "bfs", "dijkstra", "all_paths", "rec_cte", "wal_append",
          "wal_fsync", "wal_truncate", "wal_torn", "checkpoint", and the
          server's sites "accept" (connection dropped at admission),
          "session_read" (connection dies mid-read), "group_fsync" (the
          shared group-commit fsync fails) and "shutdown_drain" (crash
          between drain and the final checkpoint), and replication's
          sites "repl_send" (a shipped chunk dies on the wire),
          "repl_apply" (the standby fails mid-apply), "repl_handshake"
          (attach dies under the writer lock) and "promote_fence" (the
          promotion fence fails, leaving the standby a standby), ... *)
  | At_site_after of { site : string; after : int }
      (** raise at the [after]-th checkpoint of the named site — only
          hits of that site count ([site=S,after=N] in the env var) *)

exception Injected of { site : string; checks : int }
(** Mapped by [Db.guard] into [Error.Resource_error] with kind
    [Error.Fault]. *)

(** [set (Some spec)] arms a single spec (resetting its hit counter);
    [set None] disarms everything. Process-global state. *)
val set : spec option -> unit

(** [set_specs specs] arms a whole list at once, each with a fresh
    counter; [set_specs []] disarms everything. *)
val set_specs : spec list -> unit

val clear : unit -> unit

val current : unit -> spec option
(** The first still-armed spec, [None] when disarmed. *)

val specs : unit -> spec list
(** Every still-armed spec, in arming order. *)

(** [parse s] — one segment: ["after=N"], ["site=S"] or
    ["site=S,after=N"]; [""], ["off"], ["none"] and anything malformed
    parse to [None]. *)
val parse : string -> spec option

(** [parse_specs s] — a semicolon-separated list of segments
    (["site=wal_fsync,after=3;site=rename"]); malformed segments are
    dropped. *)
val parse_specs : string -> spec list

val env_var : string
(** ["SQLGRAPH_FAULT"]. *)

(** [arm_from_env ()] — arm from [SQLGRAPH_FAULT] if set and well-formed.
    Called by the CLI at startup; never called implicitly by the library,
    so test processes stay deterministic. *)
val arm_from_env : unit -> unit

(** [hit ~site] — the checkpoint hook: raises {!Injected} (after
    disarming the matching spec) when an armed spec matches, else counts
    and returns. *)
val hit : site:string -> unit
