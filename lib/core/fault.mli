(** Deterministic fault injection for the governor's checkpoints.

    Every cooperative checkpoint the {!Governor} fires first consults this
    module, so arming a fault exercises the exact unwind path a real
    budget exhaustion would take — mid-BFS, mid-Dijkstra, mid-statement,
    inside an open transaction — without depending on timing. Tests arm
    it with {!set}; end-to-end runs arm it with the [SQLGRAPH_FAULT]
    environment variable (read by the CLI via {!arm_from_env}).

    Faults are one-shot: the spec disarms itself immediately before
    raising, so recovery code (rollback, error rendering, the next
    statement) runs fault-free. *)

type spec =
  | After_checks of int  (** raise at the Nth checkpoint, any site *)
  | At_site of string
      (** raise at the first checkpoint of the named site:
          "interp", "bfs", "dijkstra", "all_paths", "rec_cte", ... *)

exception Injected of { site : string; checks : int }
(** Mapped by [Db.guard] into [Error.Resource_error] with kind
    [Error.Fault]. *)

(** [set (Some spec)] arms (resetting the check counter); [set None]
    disarms. Process-global state. *)
val set : spec option -> unit

val clear : unit -> unit
val current : unit -> spec option

(** [parse s] — ["after=N"] or ["site=S"]; [""], ["off"], ["none"] and
    anything malformed parse to [None]. *)
val parse : string -> spec option

val env_var : string
(** ["SQLGRAPH_FAULT"]. *)

(** [arm_from_env ()] — arm from [SQLGRAPH_FAULT] if set and well-formed.
    Called by the CLI at startup; never called implicitly by the library,
    so test processes stay deterministic. *)
val arm_from_env : unit -> unit

(** [hit ~site] — the checkpoint hook: raises {!Injected} (after
    disarming) when the armed spec matches, else counts and returns. *)
val hit : site:string -> unit
