(* The exception lives in [Error] so [Db.guard] can catch it by name
   without a csv -> db -> csv dependency cycle; re-exported here under
   its historical name. *)
exception Csv_error = Error.Csv_error

let err fmt = Printf.ksprintf (fun s -> raise (Csv_error s)) fmt

(* A small state machine over the raw text; handles quoted fields with
   doubled quotes, bare CR before LF, and a missing final newline. *)
let parse_string s =
  let n = String.length s in
  let rows = ref [] in
  let fields = ref [] in
  let buf = Buffer.create 32 in
  let started = ref false in
  (* row has content *)
  let flush_field () =
    fields := Buffer.contents buf :: !fields;
    Buffer.clear buf
  in
  let flush_row () =
    flush_field ();
    rows := List.rev !fields :: !rows;
    fields := [];
    started := false
  in
  let i = ref 0 in
  while !i < n do
    let c = s.[!i] in
    (match c with
    | '"' ->
      started := true;
      incr i;
      let closed = ref false in
      while not !closed do
        if !i >= n then err "unterminated quoted field"
        else if s.[!i] = '"' then
          if !i + 1 < n && s.[!i + 1] = '"' then begin
            Buffer.add_char buf '"';
            i := !i + 2
          end
          else begin
            closed := true;
            incr i
          end
        else begin
          Buffer.add_char buf s.[!i];
          incr i
        end
      done;
      decr i
    | ',' ->
      started := true;
      flush_field ()
    | '\n' -> if !started || Buffer.length buf > 0 || !fields <> [] then flush_row ()
    | '\r' -> () (* swallow; the \n does the work *)
    | c ->
      started := true;
      Buffer.add_char buf c);
    incr i
  done;
  if !started || Buffer.length buf > 0 || !fields <> [] then flush_row ();
  List.rev !rows

let cell_of_string ty text =
  if text = "" then Storage.Value.Null
  else
    match Storage.Value.cast (Storage.Value.Str text) ty with
    | Ok v -> v
    | Error m -> err "CSV: %s" m

let table_of_string ~schema ?(header = true) s =
  let rows = parse_string s in
  let rows = if header && rows <> [] then List.tl rows else rows in
  let arity = Storage.Schema.arity schema in
  let table = Storage.Table.create schema in
  List.iteri
    (fun rownum fields ->
      if List.length fields <> arity then
        err "CSV row %d has %d fields, expected %d" (rownum + 1)
          (List.length fields) arity;
      let cells =
        List.mapi
          (fun col text ->
            cell_of_string (Storage.Schema.field schema col).Storage.Schema.ty
              text)
          fields
      in
      Storage.Table.append_row table (Array.of_list cells))
    rows;
  table

let load_file db ~path ~table ~schema ?(header = true) () =
  Db.protect (fun () ->
      let text = In_channel.with_open_text path In_channel.input_all in
      let t = table_of_string ~schema ~header text in
      Db.load_table db ~name:table t;
      Storage.Table.nrows t)

(* Header-derived import: every column VARCHAR, names from the header
   row (falling back to c0, c1, ... when a header cell is empty). The
   CLI's \i meta-command uses this so ad-hoc files load without a
   declared schema — and fails through the same guard as statements. *)
let import_untyped db ~path ~table =
  Db.protect (fun () ->
      let text = In_channel.with_open_text path In_channel.input_all in
      let rows = parse_string text in
      match rows with
      | [] -> err "CSV import: %s is empty" path
      | header :: body ->
        let fields =
          List.mapi
            (fun i name ->
              let name = String.trim name in
              let name = if name = "" then Printf.sprintf "c%d" i else name in
              { Storage.Schema.name; ty = Storage.Dtype.TStr })
            header
        in
        let schema = Storage.Schema.make fields in
        let arity = List.length fields in
        let t = Storage.Table.create schema in
        List.iteri
          (fun rownum cells ->
            if List.length cells <> arity then
              err "CSV row %d has %d fields, expected %d" (rownum + 2)
                (List.length cells) arity;
            let cells =
              List.map
                (fun text ->
                  if text = "" then Storage.Value.Null
                  else Storage.Value.Str text)
                cells
            in
            Storage.Table.append_row t (Array.of_list cells))
          body;
        Db.load_table db ~name:table t;
        Storage.Table.nrows t)

let save_file rs ~path =
  Db.protect (fun () ->
      Out_channel.with_open_text path (fun oc ->
          Out_channel.output_string oc (Resultset.to_csv rs)))
