(** Unified error type of the public API. *)

exception Csv_error of string
(** The CSV layer's exception; defined here (and re-exported as
    {!Csv.Csv_error}) so [Db.guard] can map it without a dependency
    cycle. *)

(** Which budget a query blew (see {!Governor}). *)
type resource_kind =
  | Timeout  (** wall-clock deadline *)
  | Rows  (** result / accumulated row budget *)
  | Steps  (** traversal-step budget *)
  | Frontier  (** frontier / heap size budget *)
  | Paths  (** path-enumeration budget *)
  | Cancelled  (** the cooperative cancellation token was set *)
  | Fault  (** a deterministically injected fault (see {!Fault}) *)

val resource_kind_name : resource_kind -> string

type t =
  | Parse_error of { message : string; line : int; col : int }
  | Bind_error of string  (** semantic errors: unknown names, type errors *)
  | Runtime_error of string
      (** execution faults: division by zero, non-positive CHEAPEST SUM
          weights, scalar subquery cardinality, ... *)
  | Resource_error of {
      kind : resource_kind;
      spent : float;  (** what was consumed (ms, rows, steps, ...) *)
      limit : float;  (** the configured budget *)
      site : string;  (** the checkpoint that tripped: "bfs", "interp", … *)
    }
      (** a {!Governor} budget was exhausted, the query was cancelled, or a
          fault was injected; the statement failed but the session — and
          any open transaction snapshot — survive *)
  | Io_error of string  (** file system / CSV import-export failures *)
  | Internal_error of string
      (** defensive catch-all: [Stack_overflow], [Not_found],
          [Out_of_memory], ... mapped so no statement can crash the REPL *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
