(* Bounded ring-buffer span recorder.  See trace.mli for the contract.

   Layout: one struct-of-arrays ring shared by all domains.  A writer
   reserves a slot with a single [Atomic.fetch_and_add] on the global
   event counter and then fills the slot's columns in place — no
   allocation per event (timestamps live in a flat float array, so even
   the float store does not box).  Slot writes are not synchronized
   beyond the reservation: two domains never share a slot, and readers
   ([events]) are documented as between-statement snapshots, so a torn
   read of an in-flight slot is benign. *)

type clock = unit -> float

let the_clock : clock ref = ref Unix.gettimeofday
let set_clock c = the_clock := c
let now () = !the_clock ()

let on = Atomic.make false
let set_enabled b = Atomic.set on b
let enabled () = Atomic.get on

(* Event kinds, as ints in the ring. *)
let k_begin = 0
let k_end = 1
let k_instant = 2

type ring = {
  cap : int;
  ts : float array;  (* flat float array: unboxed stores *)
  kind : int array;
  track : int array;
  span : int array;
  parent : int array;
  query : int array;
  name : string array;
  attrs : (string * string) list array;
}

let mk_ring cap =
  {
    cap;
    ts = Array.make cap 0.0;
    kind = Array.make cap 0;
    track = Array.make cap 0;
    span = Array.make cap 0;
    parent = Array.make cap 0;
    query = Array.make cap 0;
    name = Array.make cap "";
    attrs = Array.make cap [];
  }

let ring = ref (mk_ring 65536)

(* Total events ever written (mod nothing); slot = index mod cap.  Also
   the source of "dropped" accounting. *)
let head = Atomic.make 0
let base = Atomic.make 0 (* events discarded by [clear] *)
let span_ctr = Atomic.make 0
let query_ctr = Atomic.make 0
let cur_query = Atomic.make 0

let next_query () =
  let q = 1 + Atomic.fetch_and_add query_ctr 1 in
  Atomic.set cur_query q;
  q

let current_query () = Atomic.get cur_query

let clear () =
  Atomic.set base (Atomic.get head);
  (* Reset head to base lazily: keep monotonic indices, just remember
     where the live window starts. *)
  ()

let configure ~capacity =
  let cap = max 16 capacity in
  ring := mk_ring cap;
  Atomic.set head 0;
  Atomic.set base 0

(* Per-domain stack of open span ids: a growable int array so pushes
   after warm-up allocate nothing. *)
type stack = { mutable buf : int array; mutable len : int }

let stack_key =
  Domain.DLS.new_key (fun () -> { buf = Array.make 32 (-1); len = 0 })

let push st v =
  if st.len = Array.length st.buf then begin
    let bigger = Array.make (2 * st.len) (-1) in
    Array.blit st.buf 0 bigger 0 st.len;
    st.buf <- bigger
  end;
  st.buf.(st.len) <- v;
  st.len <- st.len + 1

(* Multi-threaded sessions (the server runs one systhread per client,
   all in one domain) register a per-thread track: their own timeline id
   and their own span stack, so interleaved statements from different
   sessions cannot corrupt each other's nesting.  Keyed by [Thread.id];
   the registration table is only consulted when non-empty, so
   single-threaded sessions pay one atomic load on top of the DLS
   lookup. *)
type ctx = { ctx_track : int; ctx_stack : stack }

let thread_ctxs : (int, ctx) Hashtbl.t = Hashtbl.create 8
let thread_ctxs_mu = Mutex.create ()
let have_thread_ctxs = Atomic.make false

let register_thread_track track =
  let key = Thread.id (Thread.self ()) in
  Mutex.lock thread_ctxs_mu;
  Hashtbl.replace thread_ctxs key
    { ctx_track = track; ctx_stack = { buf = Array.make 32 (-1); len = 0 } };
  Atomic.set have_thread_ctxs true;
  Mutex.unlock thread_ctxs_mu

let unregister_thread_track () =
  let key = Thread.id (Thread.self ()) in
  Mutex.lock thread_ctxs_mu;
  Hashtbl.remove thread_ctxs key;
  if Hashtbl.length thread_ctxs = 0 then Atomic.set have_thread_ctxs false;
  Mutex.unlock thread_ctxs_mu

let current_ctx () =
  if Atomic.get have_thread_ctxs then begin
    let key = Thread.id (Thread.self ()) in
    Mutex.lock thread_ctxs_mu;
    let c = Hashtbl.find_opt thread_ctxs key in
    Mutex.unlock thread_ctxs_mu;
    match c with
    | Some c -> c
    | None ->
      { ctx_track = (Domain.self () :> int); ctx_stack = Domain.DLS.get stack_key }
  end
  else
    { ctx_track = (Domain.self () :> int); ctx_stack = Domain.DLS.get stack_key }

let record kind ~track ~name ~sp ~parent ~attrs =
  let r = !ring in
  let i = Atomic.fetch_and_add head 1 in
  let s = i mod r.cap in
  r.ts.(s) <- now ();
  r.kind.(s) <- kind;
  r.track.(s) <- track;
  r.span.(s) <- sp;
  r.parent.(s) <- parent;
  r.query.(s) <- Atomic.get cur_query;
  r.name.(s) <- name;
  r.attrs.(s) <- attrs

let begin_span ?parent ?(attrs = []) name =
  if not (Atomic.get on) then -1
  else begin
    let c = current_ctx () in
    let st = c.ctx_stack in
    let parent =
      match parent with
      | Some p -> p
      | None -> if st.len = 0 then -1 else st.buf.(st.len - 1)
    in
    let sp = 1 + Atomic.fetch_and_add span_ctr 1 in
    push st sp;
    record k_begin ~track:c.ctx_track ~name ~sp ~parent ~attrs;
    sp
  end

let end_span ?(attrs = []) sp =
  if sp >= 0 && Atomic.get on then begin
    let c = current_ctx () in
    let st = c.ctx_stack in
    let track = c.ctx_track in
    (* Find [sp] on this track's stack; close any children above it
       first so an exceptional unwind cannot leave the track skewed. *)
    let pos = ref (-1) in
    for i = st.len - 1 downto 0 do
      if !pos < 0 && st.buf.(i) = sp then pos := i
    done;
    if !pos < 0 then
      (* Not opened on this track (or stack already unwound): record
         the end anyway so the pair completes. *)
      record k_end ~track ~name:"" ~sp ~parent:(-1) ~attrs
    else begin
      for i = st.len - 1 downto !pos + 1 do
        record k_end ~track ~name:"" ~sp:st.buf.(i) ~parent:(-1) ~attrs:[]
      done;
      st.len <- !pos;
      record k_end ~track ~name:"" ~sp ~parent:(-1) ~attrs
    end
  end

let instant ?(attrs = []) name =
  if Atomic.get on then begin
    let c = current_ctx () in
    let st = c.ctx_stack in
    let parent = if st.len = 0 then -1 else st.buf.(st.len - 1) in
    record k_instant ~track:c.ctx_track ~name ~sp:(-1) ~parent ~attrs
  end

let span ?attrs name f =
  if not (Atomic.get on) then f ()
  else begin
    let sp = begin_span ?attrs name in
    Fun.protect ~finally:(fun () -> end_span sp) f
  end

let current_span () =
  let st = (current_ctx ()).ctx_stack in
  if st.len = 0 then -1 else st.buf.(st.len - 1)

type kind = Begin | End | Instant

type event = {
  ev_kind : kind;
  ev_ts : float;
  ev_name : string;
  ev_track : int;
  ev_span : int;
  ev_parent : int;
  ev_query : int;
  ev_attrs : (string * string) list;
}

let live_window () =
  let r = !ring in
  let h = Atomic.get head and b = Atomic.get base in
  let first = max b (h - r.cap) in
  (r, first, h)

let events () =
  let r, first, h = live_window () in
  (* End events store no name in the ring (the writer doesn't know it);
     re-join from the Begin still in the window so readers see pairs. *)
  let names = Hashtbl.create 64 in
  let out = ref [] in
  for i = first to h - 1 do
    let s = i mod r.cap in
    let k =
      if r.kind.(s) = k_begin then Begin
      else if r.kind.(s) = k_end then End
      else Instant
    in
    let name =
      match k with
      | Begin ->
        Hashtbl.replace names r.span.(s) r.name.(s);
        r.name.(s)
      | End when r.name.(s) = "" ->
        Option.value ~default:"" (Hashtbl.find_opt names r.span.(s))
      | _ -> r.name.(s)
    in
    out :=
      {
        ev_kind = k;
        ev_ts = r.ts.(s);
        ev_name = name;
        ev_track = r.track.(s);
        ev_span = r.span.(s);
        ev_parent = r.parent.(s);
        ev_query = r.query.(s);
        ev_attrs = r.attrs.(s);
      }
      :: !out
  done;
  List.rev !out

let dropped () =
  let r = !ring in
  let h = Atomic.get head and b = Atomic.get base in
  max 0 (h - b - r.cap)

(* Completed spans of one statement: (span, parent, name, dur).  End
   events carry no name, so join on span id. *)
let completed_spans ~query evs =
  let begins = Hashtbl.create 64 in
  let spans = ref [] in
  List.iter
    (fun e ->
      if e.ev_query = query then
        match e.ev_kind with
        | Begin -> Hashtbl.replace begins e.ev_span (e.ev_name, e.ev_parent, e.ev_ts)
        | End -> (
            match Hashtbl.find_opt begins e.ev_span with
            | Some (name, parent, t0) ->
                Hashtbl.remove begins e.ev_span;
                spans := (e.ev_span, parent, name, e.ev_ts -. t0) :: !spans
            | None -> ())
        | Instant -> ())
    evs;
  !spans

let self_ms_by_name ~query =
  let spans = completed_spans ~query (events ()) in
  let child_time = Hashtbl.create 64 in
  List.iter
    (fun (_, parent, _, dur) ->
      if parent >= 0 then
        let prev = Option.value ~default:0.0 (Hashtbl.find_opt child_time parent) in
        Hashtbl.replace child_time parent (prev +. dur))
    spans;
  let by_name = Hashtbl.create 16 in
  List.iter
    (fun (sp, _, name, dur) ->
      let kids = Option.value ~default:0.0 (Hashtbl.find_opt child_time sp) in
      let self = Float.max 0.0 (dur -. kids) in
      let prev = Option.value ~default:0.0 (Hashtbl.find_opt by_name name) in
      Hashtbl.replace by_name name (prev +. self))
    spans;
  Hashtbl.fold (fun name s acc -> (name, 1000.0 *. s) :: acc) by_name []
  |> List.sort (fun (_, a) (_, b) -> Float.compare b a)

(* --- Chrome trace-event export ------------------------------------- *)

let escape b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let to_catapult () =
  let evs = events () in
  (* The ring evicts oldest-first, so after a wrap the buffer can open
     with End events whose Begin was overwritten. Chrome (and our own
     json_lint) reject an E with no open span on its track — drop those
     orphans so a wrapped dump is still well-formed. *)
  let evs =
    let depth = Hashtbl.create 8 in
    List.filter
      (fun e ->
        let d = Option.value ~default:0 (Hashtbl.find_opt depth e.ev_track) in
        match e.ev_kind with
        | Begin ->
          Hashtbl.replace depth e.ev_track (d + 1);
          true
        | End ->
          if d > 0 then Hashtbl.replace depth e.ev_track (d - 1);
          d > 0
        | Instant -> true)
      evs
  in
  let t0 = match evs with [] -> 0.0 | e :: _ -> e.ev_ts in
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"traceEvents\":[";
  let first = ref true in
  (* End events carry no name; chrome matches B/E by nesting per tid, so
     re-join names for readability. *)
  let names = Hashtbl.create 64 in
  List.iter
    (fun e ->
      (match e.ev_kind with
      | Begin -> Hashtbl.replace names e.ev_span e.ev_name
      | _ -> ());
      let name =
        if e.ev_name <> "" then e.ev_name
        else Option.value ~default:"span" (Hashtbl.find_opt names e.ev_span)
      in
      let ph =
        match e.ev_kind with Begin -> "B" | End -> "E" | Instant -> "i"
      in
      if not !first then Buffer.add_char b ',';
      first := false;
      Buffer.add_string b "{\"name\":\"";
      escape b name;
      Buffer.add_string b (Printf.sprintf
        "\",\"cat\":\"sqlgraph\",\"ph\":\"%s\",\"ts\":%.3f,\"pid\":1,\"tid\":%d"
        ph ((e.ev_ts -. t0) *. 1e6) e.ev_track);
      (match e.ev_kind with
      | Instant -> Buffer.add_string b ",\"s\":\"t\""
      | _ -> ());
      Buffer.add_string b ",\"args\":{\"query\":";
      Buffer.add_string b (string_of_int e.ev_query);
      if e.ev_kind = Begin then begin
        Buffer.add_string b ",\"span\":";
        Buffer.add_string b (string_of_int e.ev_span);
        Buffer.add_string b ",\"parent\":";
        Buffer.add_string b (string_of_int e.ev_parent)
      end;
      List.iter
        (fun (k, v) ->
          Buffer.add_string b ",\"";
          escape b k;
          Buffer.add_string b "\":\"";
          escape b v;
          Buffer.add_string b "\"")
        e.ev_attrs;
      Buffer.add_string b "}}")
    evs;
  Buffer.add_string b "],\"displayTimeUnit\":\"ms\"}\n";
  Buffer.contents b

let write_catapult ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_catapult ()))
