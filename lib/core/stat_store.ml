(* The bounded per-Db statement-fingerprint store behind
   sqlgraph_stat_statements (DESIGN.md §14): cumulative execution stats
   keyed by the 64-bit fingerprint of the normalized statement text.

   Bounded: at [bound] distinct fingerprints, recording a new one evicts
   the least-called entry (ties broken arbitrarily) and counts the
   eviction, so a workload of unbounded distinct shapes cannot grow the
   store without limit — the same contract as pg_stat_statements.

   The server shares one store across every session's private Db
   (Db.set_stat_store), so mutation goes through a mutex.  Latency is
   recorded as the exact same wall-clock delta Db.observe_stmt feeds the
   sqlgraph_statement_seconds histogram, which is what makes the store
   reconcile with the registry by construction. *)

type entry = {
  fingerprint : int64;
  query : string; (* normalized text *)
  mutable calls : int;
  mutable failures : int;
  mutable gov_aborts : int; (* Resource_error outcomes (governor, faults) *)
  mutable total_ms : float;
  mutable min_ms : float;
  mutable max_ms : float;
  mutable rows : int;
  mutable index_hits : int;
  mutable index_misses : int;
  mutable waves : int; (* batched MS-BFS waves *)
  mutable steals : int; (* work-stealing scheduler steals *)
}

type t = {
  mutable bound : int;
  tbl : (int64, entry) Hashtbl.t;
  mutable evicted : int;
  mu : Mutex.t;
}

let default_bound = 500

let create ?(bound = default_bound) () =
  { bound = max 1 bound; tbl = Hashtbl.create 64; evicted = 0; mu = Mutex.create () }

let bound t = t.bound

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let evict_coldest_locked t =
  let victim =
    Hashtbl.fold
      (fun _ e acc ->
        match acc with
        | Some v when v.calls <= e.calls -> acc
        | _ -> Some e)
      t.tbl None
  in
  match victim with
  | Some e ->
    Hashtbl.remove t.tbl e.fingerprint;
    t.evicted <- t.evicted + 1
  | None -> ()

let record t ~fingerprint ~query ~ms ~rows ~failed ~gov_abort ~index_hits
    ~index_misses ~waves ~steals =
  locked t (fun () ->
      let e =
        match Hashtbl.find_opt t.tbl fingerprint with
        | Some e -> e
        | None ->
          if Hashtbl.length t.tbl >= t.bound then evict_coldest_locked t;
          let e =
            {
              fingerprint;
              query;
              calls = 0;
              failures = 0;
              gov_aborts = 0;
              total_ms = 0.;
              min_ms = infinity;
              max_ms = 0.;
              rows = 0;
              index_hits = 0;
              index_misses = 0;
              waves = 0;
              steals = 0;
            }
          in
          Hashtbl.replace t.tbl fingerprint e;
          e
      in
      e.calls <- e.calls + 1;
      if failed then e.failures <- e.failures + 1;
      if gov_abort then e.gov_aborts <- e.gov_aborts + 1;
      e.total_ms <- e.total_ms +. ms;
      if ms < e.min_ms then e.min_ms <- ms;
      if ms > e.max_ms then e.max_ms <- ms;
      e.rows <- e.rows + rows;
      e.index_hits <- e.index_hits + index_hits;
      e.index_misses <- e.index_misses + index_misses;
      e.waves <- e.waves + waves;
      e.steals <- e.steals + steals)

let reset t =
  locked t (fun () ->
      Hashtbl.reset t.tbl;
      t.evicted <- 0)

let size t = locked t (fun () -> Hashtbl.length t.tbl)
let evicted t = locked t (fun () -> t.evicted)

(* A consistent copy, hottest (total_ms) first — the natural reading
   order and the order sqlgraph_stat_statements materializes in. *)
let entries t =
  locked t (fun () ->
      Hashtbl.fold (fun _ e acc -> { e with fingerprint = e.fingerprint } :: acc) t.tbl []
      |> List.sort (fun a b -> compare b.total_ms a.total_ms))

let find t fingerprint =
  locked t (fun () ->
      Option.map
        (fun e -> { e with fingerprint = e.fingerprint })
        (Hashtbl.find_opt t.tbl fingerprint))

let total_ms t =
  locked t
    (fun () -> Hashtbl.fold (fun _ e acc -> acc +. e.total_ms) t.tbl 0.)

let total_calls t =
  locked t (fun () -> Hashtbl.fold (fun _ e acc -> acc + e.calls) t.tbl 0)
