(** Cumulative session metrics: named counters, gauges and log-scale
    histograms.

    One registry lives on each [Db] session and absorbs the
    per-statement [Interp.stats] / workspace counters that were
    previously discarded after every query, so "what was p99 statement
    latency over this workload?" has an answer at any point in the
    session.

    Histograms are log-scale: observations land in geometric buckets
    (4 per decade from 1e-7 to 1e3, plus +Inf), so quantile readbacks
    ({!percentiles}) are estimates with at most one bucket (~78%) of
    relative error; the maximum is tracked exactly.  Metrics are
    created on first use and keyed by name; registration order is
    preserved in every rendering.

    Renderings: {!to_prometheus} (text exposition format v0.0.4, for
    [--metrics-out]), {!to_table} (aligned human table, for [\metrics])
    and {!fold} (for the [session] section of the sqlgraph-metrics-v1
    JSON).  A registry is not synchronized: statements execute
    sequentially on the session thread, which is the only writer. *)

type t

val create : unit -> t

val inc : t -> ?help:string -> string -> int -> unit
(** Add to a (monotonic) counter, creating it at 0 first if needed. *)

val set_gauge : t -> ?help:string -> string -> float -> unit

val observe : t -> ?help:string -> string -> float -> unit
(** Record one observation into a histogram. *)

type percentiles = {
  count : int;
  sum : float;
  p50 : float;
  p90 : float;
  p99 : float;
  max : float;
}

val percentiles : t -> string -> percentiles option
(** Quantile readback for a histogram ([None] if the name is unknown,
    not a histogram, or empty).  p50/p90/p99 are upper-bound estimates
    from the log buckets, clamped to the exact observed max. *)

type metric =
  | Counter of int
  | Gauge of float
  | Histogram of percentiles

val fold : t -> init:'a -> f:('a -> string -> help:string -> metric -> 'a) -> 'a
(** Iterate metrics in registration order. *)

val to_prometheus : t -> string
(** Prometheus text exposition format v0.0.4: [# HELP]/[# TYPE] comment
    pairs, counters/gauges as single samples, histograms as cumulative
    [_bucket{le="..."}] series plus [_sum] and [_count]. *)

val to_table : t -> string
(** Aligned human-readable table (the [\metrics] meta-command). *)
