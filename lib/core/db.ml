module V = Storage.Value

(* Debug tracing: enable with Logs.Src.set_level Db.log_src (Some Debug). *)
let log_src = Logs.Src.create "sqlgraph.db" ~doc:"sqlgraph query lifecycle"

module Log = (val Logs.src_log log_src : Logs.LOG)

(* Hooks installed by the Wal layer when the session runs durable.  The
   Db calls them around DML so write-ahead logging stays a pure layering
   concern: in autocommit [dur_log] runs *before* the statement applies
   (log-before-apply) and [dur_abort] erases the record if the apply then
   fails; inside an open transaction applied statements are buffered with
   [dur_buffer] and only reach the log at COMMIT via [dur_commit] (group
   commit), while [dur_rollback] discards the buffer. *)
type durability = {
  dur_log : sql:string -> params:Storage.Value.t array -> unit;
  dur_abort : unit -> unit;
  dur_buffer : sql:string -> params:Storage.Value.t array -> unit;
  dur_commit : unit -> unit;
  dur_rollback : unit -> unit;
}

type t = {
  catalog : Storage.Catalog.t;
  indices : Executor.Graph_index.t;
  mutable last_stats : Executor.Interp.stats option;
  mutable snapshot : (string * Storage.Table.t) list option;
      (* deep copy of every table at BEGIN; None = autocommit mode *)
  mutable parallelism : int;
      (* traversal domains per run_pairs batch (SET parallelism / CLI
         --domains); 1 = serial *)
  registry : Telemetry.Registry.t;
      (* cumulative session metrics; every statement absorbs its stats
         here (see [observe_stmt]) *)
  mutable slow_query_ms : int option;
      (* SET slow_query_ms / CLI --slow-query-ms; None = off.  The Db
         only stores the threshold — the CLI owns the log file. *)
  mutable durability : durability option;
      (* WAL hooks; None = plain in-memory session *)
  mutable readonly : bool;
      (* inspection mode (--readonly): every catalog-mutating statement
         is refused before it applies *)
  mutable stat_store : Stat_store.t;
      (* per-fingerprint cumulative statement stats
         (sqlgraph_stat_statements); the server swaps in its shared
         store so every session feeds one view *)
  mutable stmt_seq : int; (* statements observed; the :<seq> of query ids *)
  mutable last_query_id : string option; (* "<fp-hex>:<seq>" of the last stmt *)
  mutable last_fingerprint : string option; (* fp hex of the last stmt *)
  created_at : float; (* Unix time of create; drives sqlgraph_uptime_seconds *)
}

(* --- system tables (DESIGN.md §14) --------------------------------- *)

let reserved_prefix = "sqlgraph_"

let is_reserved_name name =
  let n = String.lowercase_ascii name in
  String.length n >= String.length reserved_prefix
  && String.sub n 0 (String.length reserved_prefix) = reserved_prefix

let refuse_reserved name =
  if is_reserved_name name then
    raise
      (Relalg.Binder.Bind_error
         (Printf.sprintf
            "%s is a reserved name: sqlgraph_* tables are read-only system \
             tables"
            name))

let stat_statements_schema =
  Storage.Schema.of_pairs
    [
      ("fingerprint", Storage.Dtype.TStr);
      ("query", Storage.Dtype.TStr);
      ("calls", Storage.Dtype.TInt);
      ("failures", Storage.Dtype.TInt);
      ("gov_aborts", Storage.Dtype.TInt);
      ("total_ms", Storage.Dtype.TFloat);
      ("min_ms", Storage.Dtype.TFloat);
      ("max_ms", Storage.Dtype.TFloat);
      ("mean_ms", Storage.Dtype.TFloat);
      ("rows", Storage.Dtype.TInt);
      ("index_hits", Storage.Dtype.TInt);
      ("index_misses", Storage.Dtype.TInt);
      ("waves", Storage.Dtype.TInt);
      ("steals", Storage.Dtype.TInt);
    ]

let stat_statements_table store =
  Storage.Table.of_rows stat_statements_schema
    (List.map
       (fun (e : Stat_store.entry) ->
         [
           V.Str (Sql.Fingerprint.to_hex e.Stat_store.fingerprint);
           V.Str e.Stat_store.query;
           V.Int e.Stat_store.calls;
           V.Int e.Stat_store.failures;
           V.Int e.Stat_store.gov_aborts;
           V.Float e.Stat_store.total_ms;
           V.Float (if e.Stat_store.calls = 0 then 0. else e.Stat_store.min_ms);
           V.Float e.Stat_store.max_ms;
           V.Float
             (if e.Stat_store.calls = 0 then 0.
              else e.Stat_store.total_ms /. float_of_int e.Stat_store.calls);
           V.Int e.Stat_store.rows;
           V.Int e.Stat_store.index_hits;
           V.Int e.Stat_store.index_misses;
           V.Int e.Stat_store.waves;
           V.Int e.Stat_store.steals;
         ])
       (Stat_store.entries store))

let stat_graph_schema =
  Storage.Schema.of_pairs
    [
      ("edge_table", Storage.Dtype.TStr);
      ("src_cols", Storage.Dtype.TStr);
      ("dst_cols", Storage.Dtype.TStr);
      ("hits", Storage.Dtype.TInt);
      ("misses", Storage.Dtype.TInt);
    ]

(* One row per enabled graph index; the hit/miss counters are
   index-subsystem-wide (repeated per row).  With no index enabled a
   single all-NULL-keys row still carries the counters. *)
let stat_graph_table indices =
  let hits = Executor.Graph_index.hits indices in
  let misses = Executor.Graph_index.misses indices in
  let cols l = String.concat "," (List.map string_of_int l) in
  let rows =
    match Executor.Graph_index.keys indices with
    | [] -> [ [ V.Null; V.Null; V.Null; V.Int hits; V.Int misses ] ]
    | keys ->
      List.map
        (fun (k : Executor.Graph_index.key) ->
          [
            V.Str k.Executor.Graph_index.table;
            V.Str (cols k.Executor.Graph_index.src);
            V.Str (cols k.Executor.Graph_index.dst);
            V.Int hits;
            V.Int misses;
          ])
        keys
  in
  Storage.Table.of_rows stat_graph_schema rows

let stat_wal_schema =
  Storage.Schema.of_pairs
    [
      ("dir", Storage.Dtype.TStr);
      ("generation", Storage.Dtype.TInt);
      ("logical_end", Storage.Dtype.TInt);
      ("wal_path", Storage.Dtype.TStr);
      ("readonly", Storage.Dtype.TBool);
    ]

let stat_sessions_schema =
  Storage.Schema.of_pairs
    [
      ("sid", Storage.Dtype.TInt);
      ("statements", Storage.Dtype.TInt);
      ("last_qid", Storage.Dtype.TStr);
      ("snapshot", Storage.Dtype.TInt);
      ("in_txn", Storage.Dtype.TBool);
      ("connected_seconds", Storage.Dtype.TFloat);
    ]

(* One row per replication link: on a primary, one per attached replica;
   on a replica, one for its upstream.  Empty outside a replicated
   server (the default provider below); lib/server/replication.ml
   installs the live provider. *)
let stat_replication_schema =
  Storage.Schema.of_pairs
    [
      ("role", Storage.Dtype.TStr);
      ("state", Storage.Dtype.TStr);
      ("peer", Storage.Dtype.TStr);
      ("generation", Storage.Dtype.TInt);
      ("shipped_offset", Storage.Dtype.TInt);
      ("applied_offset", Storage.Dtype.TInt);
      ("lag_bytes", Storage.Dtype.TInt);
      ("last_heartbeat_seconds", Storage.Dtype.TFloat);
    ]

let register_virtual_table t ~name provider =
  Storage.Catalog.register_virtual t.catalog name provider

(* Default providers for a standalone (in-process) session.  The WAL
   layer overrides sqlgraph_stat_wal with a live provider when a store
   attaches; the server overrides sqlgraph_stat_sessions and
   sqlgraph_metrics on each session Db with providers that close over
   its shared state. *)
let install_system_tables t =
  register_virtual_table t ~name:"sqlgraph_stat_statements" (fun () ->
      stat_statements_table t.stat_store);
  register_virtual_table t ~name:"sqlgraph_stat_graph" (fun () ->
      stat_graph_table t.indices);
  register_virtual_table t ~name:"sqlgraph_stat_wal" (fun () ->
      Storage.Table.of_rows stat_wal_schema []);
  register_virtual_table t ~name:"sqlgraph_stat_sessions" (fun () ->
      Storage.Table.of_rows stat_sessions_schema []);
  register_virtual_table t ~name:"sqlgraph_stat_replication" (fun () ->
      Storage.Table.of_rows stat_replication_schema []);
  register_virtual_table t ~name:"sqlgraph_metrics" (fun () ->
      Metrics.registry_table [ t.registry ])

let create ?indices () =
  let t =
    {
      catalog = Storage.Catalog.create ();
      indices =
        (match indices with
        | Some ix -> ix
        | None -> Executor.Graph_index.create ());
      last_stats = None;
      snapshot = None;
      parallelism = 1;
      registry = Telemetry.Registry.create ();
      slow_query_ms = None;
      durability = None;
      readonly = false;
      stat_store = Stat_store.create ();
      stmt_seq = 0;
      last_query_id = None;
      last_fingerprint = None;
      created_at = Unix.gettimeofday ();
    }
  in
  install_system_tables t;
  t

let catalog t = t.catalog
let stat_store t = t.stat_store
let set_stat_store t s = t.stat_store <- s
let reset_statement_stats t = Stat_store.reset t.stat_store
let last_query_id t = t.last_query_id
let last_fingerprint t = t.last_fingerprint
let set_durability t d = t.durability <- d
let in_transaction t = t.snapshot <> None
let load_table ?version t ~name table =
  match version with
  | None -> Storage.Catalog.replace t.catalog name table
  | Some v -> Storage.Catalog.replace_at t.catalog name table ~version:v

let indices t = t.indices

(* Pre-build every enabled graph index over the current catalog (the
   replica's warm path; see Graph_index.warm). *)
let warm_graph_indexes t = Executor.Graph_index.warm t.indices ~catalog:t.catalog
let parallelism t = t.parallelism
let set_parallelism t n = t.parallelism <- max 1 n
let registry t = t.registry
let slow_query_ms t = t.slow_query_ms
let set_slow_query_ms t v = t.slow_query_ms <- Option.map (max 0) v
let readonly t = t.readonly
let set_readonly t b = t.readonly <- b

type exec_outcome =
  | Created
  | Dropped
  | Inserted of int
  | Updated of int
  | Deleted of int
  | Selected of Resultset.t
  | Explained of string
  | Option_set of string * int
  | Began
  | Committed
  | Rolled_back

(* Run [f], mapping every layer's exception into Error.t. Statements are
   atomic by construction (UPDATE/DELETE build a replacement table before
   touching the catalog, INSERT evaluates every row before appending any),
   so unwinding here never leaves a table half-mutated — a failed
   statement inside an open transaction leaves the snapshot intact and
   COMMIT/ROLLBACK working. *)
let guard f =
  match f () with
  | v -> Ok v
  | exception Sql.Lexer.Lex_error (m, line, col) ->
    Error (Error.Parse_error { message = m; line; col })
  | exception Sql.Parser.Parse_error (m, line, col) ->
    Error (Error.Parse_error { message = m; line; col })
  | exception Relalg.Binder.Bind_error m -> Error (Error.Bind_error m)
  | exception Relalg.Scalar.Runtime_error m -> Error (Error.Runtime_error m)
  | exception Graph.Runtime.Weight_error m -> Error (Error.Runtime_error m)
  | exception Governor.Resource_error { kind; spent; limit; site } ->
    Error (Error.Resource_error { kind; spent; limit; site })
  | exception Fault.Injected { site; checks } ->
    Error
      (Error.Resource_error
         {
           kind = Error.Fault;
           spent = float_of_int checks;
           limit = float_of_int checks;
           site;
         })
  | exception Error.Csv_error m -> Error (Error.Io_error m)
  | exception Sys_error m -> Error (Error.Io_error m)
  | exception Unix.Unix_error (e, fn, arg) ->
    Error
      (Error.Io_error (Printf.sprintf "%s %s: %s" fn arg (Unix.error_message e)))
  | exception Invalid_argument m ->
    Error (Error.Runtime_error ("internal: " ^ m))
  | exception Not_found -> Error (Error.Internal_error "Not_found escaped")
  | exception Stack_overflow ->
    Error
      (Error.Internal_error
         "stack overflow (query nesting or graph recursion too deep)")
  | exception Out_of_memory -> Error (Error.Internal_error "out of memory")

let protect = guard

let fresh_ctx ?(tracing = false) t gov =
  Executor.Interp.create_ctx ~catalog:t.catalog ~indices:t.indices ~tracing
    ~domains:t.parallelism
    ~check:(Governor.checkpoint gov) ()

(* Merge the governor's counters into the per-query stats record. *)
let merge_counters gov (stats : Executor.Interp.stats) =
  let c = Governor.counters gov in
  stats.Executor.Interp.gov_checks <- c.Governor.checks;
  stats.Executor.Interp.gov_steps <- c.Governor.steps;
  stats.Executor.Interp.gov_peak_frontier <- c.Governor.peak_frontier;
  stats.Executor.Interp.gov_paths <- c.Governor.paths;
  stats.Executor.Interp.gov_budget_remaining_ms <-
    (match c.Governor.remaining_ms with Some r -> r | None -> Float.nan)

let run_select t ~params ~optimize ~gov q =
  let timed what f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    Log.debug (fun m -> m "%s: %.6fs" what (Unix.gettimeofday () -. t0));
    r
  in
  let plan =
    timed "bind" (fun () -> Relalg.Binder.bind_query ~catalog:t.catalog ~params q)
  in
  let plan = timed "rewrite" (fun () -> Relalg.Rewriter.rewrite ~options:optimize plan) in
  let ctx = fresh_ctx t gov in
  let table =
    timed "execute" (fun () ->
        Telemetry.Trace.span "execute" (fun () -> Executor.Interp.run ctx plan))
  in
  (* the result-row budget tests the final cardinality *)
  Governor.check gov ~site:"result" ~rows:(Storage.Table.nrows table) ();
  let stats = Executor.Interp.stats ctx in
  merge_counters gov stats;
  Log.debug (fun m ->
      m "graphs built=%d reused=%d build=%.6fs traverse=%.6fs rows=%d"
        stats.Executor.Interp.graphs_built stats.Executor.Interp.graphs_reused
        stats.Executor.Interp.graph_build_seconds
        stats.Executor.Interp.graph_traverse_seconds
        (Storage.Table.nrows table));
  t.last_stats <- Some stats;
  Resultset.of_table table

(* Evaluate a bound predicate/expression per row of a base table. The
   per-row checkpoint (site "dml") is what makes UPDATE/DELETE statements
   governable — they never enter the interpreter's operator tree, so
   without it a runaway DML scan could not be timed out or cancelled. *)
let eval_over_rows t gov table bexpr =
  let ctx = fresh_ctx t gov in
  let run_subplan p = Executor.Interp.run ctx p in
  let n = Storage.Table.nrows table in
  let env = Executor.Eval.single ~run_subplan table 0 in
  List.init n (fun row ->
      Governor.check gov ~site:"dml" ~steps:1 ();
      env.Executor.Eval.segments.(0) <- (table, row);
      Executor.Eval.eval env bexpr)

let find_table t name =
  match Storage.Catalog.find t.catalog name with
  | Some tbl -> tbl
  | None ->
    raise (Relalg.Binder.Bind_error (Printf.sprintf "unknown table %s" name))

let exec_update t ~params ~gov ~table ~assignments ~where =
  let target = find_table t table in
  let schema = Storage.Table.schema target in
  let bind e =
    Relalg.Binder.bind_over_table ~catalog:t.catalog ~params ~schema e
  in
  let bound_assignments =
    List.map
      (fun (col, e) ->
        match Storage.Schema.index_of schema col with
        | None ->
          raise
            (Relalg.Binder.Bind_error
               (Printf.sprintf "unknown column %s in UPDATE" col))
        | Some i -> (i, bind e))
      assignments
  in
  let pred =
    Option.map
      (fun w ->
        let bw = bind w in
        if not (Storage.Dtype.equal bw.Relalg.Lplan.ty Storage.Dtype.TBool)
        then
          raise (Relalg.Binder.Bind_error "UPDATE WHERE must be boolean");
        bw)
      where
  in
  let hits =
    match pred with
    | None -> List.init (Storage.Table.nrows target) (fun _ -> true)
    | Some p -> List.map Relalg.Scalar.is_true (eval_over_rows t gov target p)
  in
  let new_cells =
    List.map (fun (i, e) -> (i, eval_over_rows t gov target e)) bound_assignments
  in
  let out = Storage.Table.create schema in
  let updated = ref 0 in
  List.iteri
    (fun row hit ->
      let cells = Storage.Table.row target row in
      if hit then begin
        incr updated;
        List.iter
          (fun (i, values) ->
            let v = List.nth values row in
            let ty = (Storage.Schema.field schema i).Storage.Schema.ty in
            match Storage.Value.cast v ty with
            | Ok v' -> cells.(i) <- v'
            | Error m -> raise (Relalg.Scalar.Runtime_error ("UPDATE: " ^ m)))
          new_cells
      end;
      Storage.Table.append_row out cells)
    hits;
  Storage.Catalog.replace t.catalog table out;
  Updated !updated

let exec_delete t ~params ~gov ~table ~where =
  let target = find_table t table in
  let schema = Storage.Table.schema target in
  let hits =
    match where with
    | None -> List.init (Storage.Table.nrows target) (fun _ -> true)
    | Some w ->
      let bw =
        Relalg.Binder.bind_over_table ~catalog:t.catalog ~params ~schema w
      in
      if not (Storage.Dtype.equal bw.Relalg.Lplan.ty Storage.Dtype.TBool) then
        raise (Relalg.Binder.Bind_error "DELETE WHERE must be boolean");
      List.map Relalg.Scalar.is_true (eval_over_rows t gov target bw)
  in
  let keep =
    hits
    |> List.mapi (fun row hit -> if hit then None else Some row)
    |> List.filter_map Fun.id
    |> Array.of_list
  in
  let deleted = Storage.Table.nrows target - Array.length keep in
  Storage.Catalog.replace t.catalog table (Storage.Table.take target keep);
  Deleted deleted

let txn_error m = raise (Relalg.Binder.Bind_error m)

let exec_begin t =
  if t.snapshot <> None then txn_error "already inside a transaction";
  t.snapshot <-
    Some
      (List.map
         (fun name ->
           (name, Storage.Table.copy (Option.get (Storage.Catalog.find t.catalog name))))
         (Storage.Catalog.names t.catalog));
  Began

let exec_commit t =
  if t.snapshot = None then txn_error "COMMIT outside a transaction";
  t.snapshot <- None;
  Committed

let exec_rollback t =
  match t.snapshot with
  | None -> txn_error "ROLLBACK outside a transaction"
  | Some saved ->
    (* drop everything touched since BEGIN, restore the copies; version
       counters may be reused afterwards, so the graph cache must go *)
    List.iter
      (fun name -> ignore (Storage.Catalog.drop t.catalog name))
      (Storage.Catalog.names t.catalog);
    List.iter
      (fun (name, table) -> Storage.Catalog.replace t.catalog name table)
      saved;
    Executor.Graph_index.clear_cache t.indices;
    t.snapshot <- None;
    Rolled_back

let exec_stmt_mem t ~params ~optimize ~gov stmt =
  match stmt with
  | Sql.Ast.Select q -> Selected (run_select t ~params ~optimize ~gov q)
  | Sql.Ast.Begin_txn -> exec_begin t
  | Sql.Ast.Commit_txn -> exec_commit t
  | Sql.Ast.Rollback_txn -> exec_rollback t
  | Sql.Ast.Explain { query = q; analyze } ->
    let plan = Relalg.Binder.bind_query ~catalog:t.catalog ~params q in
    let plan = Relalg.Rewriter.rewrite ~options:optimize plan in
    let rendered = Relalg.Explain.plan_to_string plan in
    if not analyze then Explained rendered
    else begin
      let ctx = fresh_ctx ~tracing:true t gov in
      let t0 = Unix.gettimeofday () in
      let table = Executor.Interp.run ctx plan in
      let total = Unix.gettimeofday () -. t0 in
      let stats = Executor.Interp.stats ctx in
      merge_counters gov stats;
      t.last_stats <- Some stats;
      let annots =
        List.map
          (fun (e : Executor.Interp.trace_entry) ->
            {
              Relalg.Explain.a_depth = e.Executor.Interp.tr_depth;
              a_label = e.Executor.Interp.tr_label;
              a_rows = e.Executor.Interp.tr_rows;
              a_seconds = e.Executor.Interp.tr_seconds;
              a_detail = e.Executor.Interp.tr_detail;
            })
          (Executor.Interp.trace ctx)
      in
      let buf = Buffer.create 256 in
      Buffer.add_string buf rendered;
      Buffer.add_string buf "-- analyze --\n";
      Buffer.add_string buf (Relalg.Explain.annotated_tree annots);
      Buffer.add_string buf
        (Printf.sprintf "result: %d rows in %.3fms\n"
           (Storage.Table.nrows table) (total *. 1000.));
      Explained (Buffer.contents buf)
    end
  | Sql.Ast.Set_option { name; value } -> (
    match name with
    | "parallelism" ->
      if value < 1 then
        raise (Relalg.Binder.Bind_error "SET parallelism expects a value >= 1");
      set_parallelism t value;
      Option_set (name, t.parallelism)
    | "slow_query_ms" ->
      (* threshold in milliseconds; 0 logs every statement.  The CLI
         reads this back after each statement and owns the log file. *)
      if value < 0 then
        raise
          (Relalg.Binder.Bind_error "SET slow_query_ms expects a value >= 0");
      set_slow_query_ms t (Some value);
      Option_set (name, value)
    | other ->
      raise
        (Relalg.Binder.Bind_error
           (Printf.sprintf
              "unknown option %s (available: parallelism, slow_query_ms)"
              other)))
  | Sql.Ast.Update { table; assignments; where } ->
    refuse_reserved table;
    exec_update t ~params ~gov ~table ~assignments ~where
  | Sql.Ast.Delete { table; where } ->
    refuse_reserved table;
    exec_delete t ~params ~gov ~table ~where
  | Sql.Ast.Create_table (name, defs) ->
    refuse_reserved name;
    if Storage.Catalog.mem t.catalog name then
      raise
        (Relalg.Binder.Bind_error (Printf.sprintf "table %s already exists" name));
    let fields =
      List.map
        (fun (d : Sql.Ast.column_def) ->
          match Storage.Dtype.of_name d.Sql.Ast.col_type with
          | Some ty -> { Storage.Schema.name = d.Sql.Ast.col_name; ty }
          | None ->
            raise
              (Relalg.Binder.Bind_error
                 (Printf.sprintf "unknown type %s for column %s"
                    d.Sql.Ast.col_type d.Sql.Ast.col_name)))
        defs
    in
    Storage.Catalog.add t.catalog name
      (Storage.Table.create (Storage.Schema.make fields));
    Created
  | Sql.Ast.Drop_table name ->
    refuse_reserved name;
    if not (Storage.Catalog.drop t.catalog name) then
      raise
        (Relalg.Binder.Bind_error (Printf.sprintf "unknown table %s" name));
    Dropped
  | Sql.Ast.Create_table_as (name, q) ->
    refuse_reserved name;
    if Storage.Catalog.mem t.catalog name then
      raise
        (Relalg.Binder.Bind_error (Printf.sprintf "table %s already exists" name));
    let rs = run_select t ~params ~optimize ~gov q in
    let result = Resultset.to_table rs in
    (* results may repeat column names; a stored table may not *)
    let schema =
      Storage.Schema.make (Storage.Schema.fields (Storage.Table.schema result))
    in
    List.iter
      (fun (f : Storage.Schema.field) ->
        if Storage.Dtype.equal f.Storage.Schema.ty Storage.Dtype.TPath then
          raise
            (Relalg.Binder.Bind_error
               (Printf.sprintf
                  "column %s: paths cannot be permanently stored (flatten \
                   with UNNEST first)"
                  f.Storage.Schema.name)))
      (Storage.Schema.fields schema);
    Storage.Catalog.add t.catalog name
      (Storage.Table.of_columns ~nrows:(Storage.Table.nrows result) schema
         (List.init (Storage.Table.arity result) (Storage.Table.column result)));
    Created
  | Sql.Ast.Insert { table; columns; source } -> (
    refuse_reserved table;
    match Storage.Catalog.find t.catalog table with
    | None ->
      raise (Relalg.Binder.Bind_error (Printf.sprintf "unknown table %s" table))
    | Some target -> (
      let schema = Storage.Table.schema target in
      match source with
      | Sql.Ast.Insert_values rows ->
        let cells =
          Relalg.Binder.bind_values ~catalog:t.catalog ~params ~schema
            ~columns rows
        in
        List.iter (Storage.Table.append_row target) cells;
        Storage.Catalog.touch t.catalog table;
        Inserted (List.length cells)
      | Sql.Ast.Insert_query q ->
        let rs = run_select t ~params ~optimize ~gov q in
        let src = Resultset.to_table rs in
        let positions =
          match columns with
          | None -> List.init (Storage.Schema.arity schema) Fun.id
          | Some cols ->
            List.map
              (fun c ->
                match Storage.Schema.index_of schema c with
                | Some i -> i
                | None ->
                  raise
                    (Relalg.Binder.Bind_error
                       (Printf.sprintf "unknown column %s in INSERT" c)))
              cols
        in
        if Storage.Table.arity src <> List.length positions then
          raise
            (Relalg.Binder.Bind_error
               (Printf.sprintf
                  "INSERT ... SELECT provides %d columns, expected %d"
                  (Storage.Table.arity src) (List.length positions)));
        let arity = Storage.Schema.arity schema in
        (* statement atomicity: evaluate and cast every row before
           appending any, so a mid-statement cast failure (or injected
           fault) cannot leave a partial insert behind *)
        let staged =
          List.init (Storage.Table.nrows src) (fun row ->
              let cells = Array.make arity Storage.Value.Null in
              List.iteri
                (fun srccol pos ->
                  let v = Storage.Table.get src ~row ~col:srccol in
                  let ty = (Storage.Schema.field schema pos).Storage.Schema.ty in
                  match Storage.Value.cast v ty with
                  | Ok v' -> cells.(pos) <- v'
                  | Error m ->
                    raise (Relalg.Scalar.Runtime_error ("INSERT: " ^ m)))
                positions;
              cells)
        in
        List.iter (Storage.Table.append_row target) staged;
        Storage.Catalog.touch t.catalog table;
        Inserted (Storage.Table.nrows src)))

let mutates_catalog = function
  | Sql.Ast.Insert _ | Sql.Ast.Update _ | Sql.Ast.Delete _
  | Sql.Ast.Create_table _ | Sql.Ast.Create_table_as _ | Sql.Ast.Drop_table _
    ->
    true
  | Sql.Ast.Select _ | Sql.Ast.Explain _ | Sql.Ast.Set_option _
  | Sql.Ast.Begin_txn | Sql.Ast.Commit_txn | Sql.Ast.Rollback_txn ->
    false

(* The durable statement wrapper.  [sql] is the statement's own text
   (the raw input for [exec], the pretty-printed form for scripts) — it
   is what the WAL records and what recovery replays.  The invariant
   maintained here is prefix consistency: at every instant the log
   contains exactly the acknowledged, committed statements, in order.

   - autocommit DML: log (append + fsync) *before* applying; if the
     apply then fails, [dur_abort] truncates the record back out.
   - DML inside BEGIN..COMMIT: apply first, buffer the text; COMMIT
     flushes the whole buffer plus a commit marker under one fsync
     (group commit).  A replayer discards trailing statements with no
     marker, so a crash mid-COMMIT loses the whole transaction — which
     was never acknowledged as committed.
   - COMMIT whose log flush fails: roll the in-memory state back to the
     BEGIN snapshot and surface the error; memory and log again agree.
   - ROLLBACK: discard the buffer. *)
let exec_stmt t ~sql ~params ~optimize ~gov stmt =
  (* read-only sessions refuse mutation *before* anything applies — a
     hook-based refusal would be too late inside a transaction, where
     [dur_buffer] only runs after the statement has mutated the catalog *)
  if t.readonly && mutates_catalog stmt then
    raise
      (Relalg.Scalar.Runtime_error
         "read-only session: DML/DDL refused (opened with --readonly)");
  match t.durability with
  | None -> exec_stmt_mem t ~params ~optimize ~gov stmt
  | Some d ->
    if mutates_catalog stmt then
      if t.snapshot <> None then begin
        let out = exec_stmt_mem t ~params ~optimize ~gov stmt in
        d.dur_buffer ~sql ~params;
        out
      end
      else begin
        d.dur_log ~sql ~params;
        match exec_stmt_mem t ~params ~optimize ~gov stmt with
        | out -> out
        | exception e ->
          (try d.dur_abort () with _ -> ());
          raise e
      end
    else begin
      match stmt with
      | Sql.Ast.Commit_txn when t.snapshot <> None ->
        (try d.dur_commit ()
         with e ->
           ignore (exec_rollback t);
           raise e);
        exec_commit t
      | Sql.Ast.Rollback_txn when t.snapshot <> None ->
        let out = exec_stmt_mem t ~params ~optimize ~gov stmt in
        d.dur_rollback ();
        out
      | _ -> exec_stmt_mem t ~params ~optimize ~gov stmt
    end

(* Fold one statement's execution into the session registry.  [delta] is
   the stats record [run_select] installed for this statement, if any —
   DML/DDL never produce one, and a failed statement's partial counters
   are deliberately not absorbed. *)
module Reg = Telemetry.Registry

let absorb_stats t ~dt ~failed ~delta =
  let reg = t.registry in
  Reg.inc reg "sqlgraph_statements_total" 1 ~help:"Statements executed";
  if failed then
    Reg.inc reg "sqlgraph_statements_failed_total" 1
      ~help:"Statements that returned an error";
  Reg.observe reg "sqlgraph_statement_seconds" dt
    ~help:"Wall-clock statement latency (seconds)";
  Reg.set_gauge reg "sqlgraph_parallelism"
    (float_of_int t.parallelism)
    ~help:"Traversal domains per batch (SET parallelism)";
  Reg.set_gauge reg "sqlgraph_uptime_seconds"
    (Unix.gettimeofday () -. t.created_at)
    ~help:"Seconds since this session's Db was created";
  match delta with
  | None -> ()
  | Some (s : Executor.Interp.stats) ->
    let open Executor.Interp in
    Reg.inc reg "sqlgraph_graphs_built_total" s.graphs_built
      ~help:"Graphs built (dict+encode+CSR)";
    Reg.inc reg "sqlgraph_graphs_reused_total" s.graphs_reused
      ~help:"Graph-index cache hits";
    Reg.inc reg "sqlgraph_traversal_searches_total" s.trav_searches
      ~help:"Single-source searches run";
    Reg.inc reg "sqlgraph_traversal_settled_total" s.trav_settled
      ~help:"Vertices settled across traversals";
    Reg.inc reg "sqlgraph_traversal_edges_scanned_total" s.trav_edges
      ~help:"Edges scanned across traversals";
    Reg.inc reg "sqlgraph_traversal_waves_total" s.trav_waves
      ~help:"MS-BFS waves run";
    Reg.inc reg "sqlgraph_traversal_dir_switches_total" s.trav_dir_switches
      ~help:"Direction-optimizing BFS switches";
    Reg.inc reg "sqlgraph_sched_tasks_total" s.trav_tasks
      ~help:"Work-stealing scheduler tasks executed";
    Reg.inc reg "sqlgraph_sched_steals_total" s.trav_steals
      ~help:"Work-stealing scheduler successful steals";
    Reg.inc reg "sqlgraph_sched_splits_total" s.trav_splits
      ~help:"Work-stealing scheduler adaptive task splits";
    Reg.inc reg "sqlgraph_workspace_pool_hits_total" s.pool_hits
      ~help:"Workspace pool reuses";
    Reg.inc reg "sqlgraph_workspace_pool_misses_total" s.pool_misses
      ~help:"Workspace pool allocations";
    Reg.inc reg "sqlgraph_vectorized_ops_total" s.vec_ops
      ~help:"Vectorized evaluation ops";
    Reg.inc reg "sqlgraph_row_ops_total" s.row_ops
      ~help:"Row-at-a-time evaluation ops";
    Reg.inc reg "sqlgraph_governor_checks_total" s.gov_checks
      ~help:"Governor checkpoints evaluated";
    if s.graphs_built > 0 then
      Reg.observe reg "sqlgraph_graph_build_seconds" s.graph_build_seconds
        ~help:"Graph construction time per statement (seconds)";
    if s.trav_searches > 0 || s.trav_waves > 0 then
      Reg.observe reg "sqlgraph_graph_traverse_seconds"
        s.graph_traverse_seconds
        ~help:"Traversal time per statement (seconds)"

(* Every statement enters through here: fingerprint the text, allocate
   a query id (fingerprint hex + per-session sequence, stamped on the
   "statement" span so a trace dump joins against
   sqlgraph_stat_statements), run under that span (closed on any
   unwind), time it, absorb counters into the registry and the
   fingerprint store, and — the stale-stats fix — clear [last_stats] on
   failure so [\stats] can never silently report the previous
   statement.

   The fingerprint store records the *same* wall-clock delta the
   sqlgraph_statement_seconds histogram observes, so the store's total
   latency reconciles with the registry exactly. *)
let observe_stmt ?(rows_of = fun _ -> 0) t ~sql f =
  ignore (Telemetry.Trace.next_query ());
  t.stmt_seq <- t.stmt_seq + 1;
  let fp, norm = Sql.Fingerprint.of_sql sql in
  let fp_hex = Sql.Fingerprint.to_hex fp in
  let qid = Printf.sprintf "%s:%d" fp_hex t.stmt_seq in
  t.last_query_id <- Some qid;
  t.last_fingerprint <- Some fp_hex;
  let before = t.last_stats in
  let t0 = Unix.gettimeofday () in
  let r =
    guard (fun () -> Telemetry.Trace.span ~attrs:[ ("qid", qid) ] "statement" f)
  in
  let dt = Unix.gettimeofday () -. t0 in
  let failed = Result.is_error r in
  if failed then t.last_stats <- None;
  let delta =
    match t.last_stats with
    | Some s when not (before == t.last_stats) -> Some s
    | _ -> None
  in
  absorb_stats t ~dt ~failed ~delta;
  let gov_abort =
    match r with Error (Error.Resource_error _) -> true | _ -> false
  in
  let hits, misses, waves, steals =
    match delta with
    | Some (s : Executor.Interp.stats) ->
      ( s.Executor.Interp.index_hits,
        s.Executor.Interp.index_misses,
        s.Executor.Interp.trav_waves,
        s.Executor.Interp.trav_steals )
    | None -> (0, 0, 0, 0)
  in
  Stat_store.record t.stat_store ~fingerprint:fp ~query:norm
    ~ms:(dt *. 1000.)
    ~rows:(match r with Ok v -> rows_of v | Error _ -> 0)
    ~failed ~gov_abort ~index_hits:hits ~index_misses:misses ~waves ~steals;
  r

let outcome_rows = function
  | Selected r -> Resultset.nrows r
  | Inserted n | Updated n | Deleted n -> n
  | Created | Dropped | Explained _ | Option_set _ | Began | Committed
  | Rolled_back ->
    0

let exec t ?(params = [||]) ?(budget = Governor.no_limits) ?governor sql =
  (* [?governor] lets a caller hold the governor while the statement
     runs — the CLI's SIGINT handler cancels it cooperatively, the
     server cancels it on shutdown — instead of the per-call default. *)
  let gov = match governor with Some g -> g | None -> Governor.start budget in
  observe_stmt ~rows_of:outcome_rows t ~sql (fun () ->
      exec_stmt t ~sql ~params ~optimize:Relalg.Rewriter.default_options ~gov
        (Telemetry.Trace.span "parse" (fun () -> Sql.Parser.parse_stmt sql)))

let exec_exn t ?params ?budget sql =
  match exec t ?params ?budget sql with
  | Ok o -> o
  | Error e -> failwith (Error.to_string e)

let exec_script_each t ?(budget = Governor.no_limits) ~f sql =
  (* each statement gets its own governor: the budget is per statement,
     not per script *)
  match
    guard (fun () ->
        Telemetry.Trace.span "parse" (fun () -> Sql.Parser.parse_script sql))
  with
  | Error e -> Error e
  | Ok stmts ->
    let rec go = function
      | [] -> Ok ()
      | stmt :: rest ->
        let sql_text = Sql.Pretty.stmt_to_string stmt in
        let r =
          observe_stmt ~rows_of:outcome_rows t ~sql:sql_text (fun () ->
              exec_stmt t ~sql:sql_text ~params:[||]
                ~optimize:Relalg.Rewriter.default_options
                ~gov:(Governor.start budget) stmt)
        in
        let verdict = f ~sql:sql_text r in
        (match r with
        | Error e -> Error e
        | Ok _ -> ( match verdict with `Stop -> Ok () | `Continue -> go rest))
    in
    go stmts

let exec_script t ?budget sql =
  let outs = ref [] in
  match
    exec_script_each t ?budget sql ~f:(fun ~sql:_ r ->
        (match r with Ok o -> outs := o :: !outs | Error _ -> ());
        `Continue)
  with
  | Ok () -> Ok (List.rev !outs)
  | Error e -> Error e

let query t ?(params = [||]) ?(optimize = Relalg.Rewriter.default_options)
    ?(budget = Governor.no_limits) sql =
  observe_stmt ~rows_of:Resultset.nrows t ~sql (fun () ->
      match
        Telemetry.Trace.span "parse" (fun () -> Sql.Parser.parse_stmt sql)
      with
      | Sql.Ast.Select q ->
        run_select t ~params ~optimize ~gov:(Governor.start budget) q
      | _ ->
        raise (Relalg.Binder.Bind_error "query expects a SELECT statement"))

let query_exn t ?params ?optimize ?budget sql =
  match query t ?params ?optimize ?budget sql with
  | Ok r -> r
  | Error e -> failwith (Error.to_string e)

let explain t ?(params = [||]) ?(optimize = Relalg.Rewriter.default_options) sql
    =
  guard (fun () ->
      match Sql.Parser.parse_stmt sql with
      | Sql.Ast.Select q ->
        let plan = Relalg.Binder.bind_query ~catalog:t.catalog ~params q in
        let plan = Relalg.Rewriter.rewrite ~options:optimize plan in
        Relalg.Explain.plan_to_string plan
      | _ ->
        raise (Relalg.Binder.Bind_error "EXPLAIN expects a SELECT statement"))

let index_key t ~table ~src ~dst =
  match Storage.Catalog.find t.catalog table with
  | None ->
    raise (Relalg.Binder.Bind_error (Printf.sprintf "unknown table %s" table))
  | Some tbl ->
    let schema = Storage.Table.schema tbl in
    let col what name =
      match Storage.Schema.index_of schema name with
      | Some i -> i
      | None ->
        raise
          (Relalg.Binder.Bind_error
             (Printf.sprintf "table %s has no %s column %s" table what name))
    in
    {
      Executor.Graph_index.table;
      src = [ col "source" src ];
      dst = [ col "destination" dst ];
    }

let create_graph_index t ~table ~src ~dst =
  guard (fun () ->
      Executor.Graph_index.enable t.indices (index_key t ~table ~src ~dst))

let drop_graph_index t ~table ~src ~dst =
  guard (fun () ->
      Executor.Graph_index.disable t.indices (index_key t ~table ~src ~dst))

let last_stats t = t.last_stats
