type spec =
  | After_checks of int
  | At_site of string
  | At_site_after of { site : string; after : int }

exception Injected of { site : string; checks : int }

(* Process-global, deliberately: the harness exists to break *any* query
   flowing through *any* Db of this process deterministically, whether
   armed from a test or from SQLGRAPH_FAULT before exec. Each armed spec
   is one-shot: it disarms itself just before raising, so the unwind path
   (rollback, error rendering, the next statement) runs fault-free —
   unless *another* spec in the armed list covers a site the unwind
   visits, which is exactly how the durability fuzzer reaches the
   truncate-on-abort and poisoning paths. *)
type armed_spec = { spec : spec; mutable hits : int }

let armed : armed_spec list ref = ref []
let set_specs specs = armed := List.map (fun spec -> { spec; hits = 0 }) specs
let set = function None -> set_specs [] | Some s -> set_specs [ s ]
let clear () = set_specs []
let current () = match !armed with [] -> None | a :: _ -> Some a.spec
let specs () = List.map (fun a -> a.spec) !armed

(* One segment: "after=N", "site=S" or "site=S,after=N" (either key
   order). Malformed segments parse to None, as before. *)
let parse s =
  match String.trim s with
  | "" | "off" | "none" -> None
  | s -> (
    let kvs =
      List.filter_map
        (fun part ->
          let part = String.trim part in
          match String.index_opt part '=' with
          | Some i ->
            Some
              ( String.sub part 0 i,
                String.sub part (i + 1) (String.length part - i - 1) )
          | None -> None)
        (String.split_on_char ',' s)
    in
    if List.length kvs <> List.length (String.split_on_char ',' s) then None
    else
      let site = List.assoc_opt "site" kvs in
      let after = Option.map int_of_string_opt (List.assoc_opt "after" kvs) in
      match (site, after) with
      | Some "", _ -> None
      | Some site, None when List.length kvs = 1 -> Some (At_site site)
      | Some site, Some (Some n) when List.length kvs = 2 ->
        Some (At_site_after { site; after = n })
      | None, Some (Some n) when List.length kvs = 1 -> Some (After_checks n)
      | _ -> None)

let parse_specs s =
  String.split_on_char ';' s |> List.filter_map parse

let env_var = "SQLGRAPH_FAULT"

let arm_from_env () =
  match Sys.getenv_opt env_var with
  | None -> ()
  | Some s -> ( match parse_specs s with [] -> () | specs -> set_specs specs)

let hit ~site =
  let fire a =
    armed := List.filter (fun b -> b != a) !armed;
    raise (Injected { site; checks = a.hits })
  in
  List.iter
    (fun a ->
      match a.spec with
      | After_checks n ->
        a.hits <- a.hits + 1;
        if a.hits >= n then fire a
      | At_site s ->
        (* counts every checkpoint (any site), as the original single-spec
           harness did, so [checks] reports how far the query got *)
        a.hits <- a.hits + 1;
        if String.equal s site then fire a
      | At_site_after { site = s; after } ->
        if String.equal s site then begin
          a.hits <- a.hits + 1;
          if a.hits >= after then fire a
        end)
    !armed
