type spec =
  | After_checks of int
  | At_site of string

exception Injected of { site : string; checks : int }

(* Process-global, deliberately: the harness exists to break *any* query
   flowing through *any* Db of this process deterministically, whether
   armed from a test or from SQLGRAPH_FAULT before exec. One-shot: the
   spec disarms itself just before raising, so the unwind path (rollback,
   error rendering, the next statement) runs fault-free. *)
let armed : spec option ref = ref None
let count = ref 0

let set spec =
  armed := spec;
  count := 0

let clear () = set None
let current () = !armed

let parse s =
  match String.trim s with
  | "" | "off" | "none" -> None
  | s -> (
    match String.index_opt s '=' with
    | Some i -> (
      let key = String.sub s 0 i in
      let v = String.sub s (i + 1) (String.length s - i - 1) in
      match key with
      | "after" -> int_of_string_opt v |> Option.map (fun n -> After_checks n)
      | "site" -> if v = "" then None else Some (At_site v)
      | _ -> None)
    | None -> None)

let env_var = "SQLGRAPH_FAULT"

let arm_from_env () =
  match Sys.getenv_opt env_var with
  | None -> ()
  | Some s -> (
    match parse s with Some spec -> set (Some spec) | None -> ())

let hit ~site =
  match !armed with
  | None -> ()
  | Some (After_checks n) ->
    incr count;
    if !count >= n then begin
      clear ();
      raise (Injected { site; checks = n })
    end
  | Some (At_site s) ->
    incr count;
    if String.equal s site then begin
      let c = !count in
      clear ();
      raise (Injected { site; checks = c })
    end
