(** The bounded statement-fingerprint store behind the
    [sqlgraph_stat_statements] system table (DESIGN.md §14).

    One store lives on each {!Db} session ({!Db.stat_store}); the server
    shares its writer Db's store across every session
    ({!Db.set_stat_store}), so all operations are thread-safe.  At
    [bound] distinct fingerprints, a new fingerprint evicts the
    least-called entry. *)

type entry = {
  fingerprint : int64;
  query : string;  (** normalized text ({!Sql.Fingerprint.normalize}) *)
  mutable calls : int;
  mutable failures : int;
  mutable gov_aborts : int;
      (** failures that were [Resource_error] (governor / fault aborts) *)
  mutable total_ms : float;
  mutable min_ms : float;
  mutable max_ms : float;
  mutable rows : int;  (** rows returned (SELECT) or affected (DML) *)
  mutable index_hits : int;
  mutable index_misses : int;
  mutable waves : int;  (** batched MS-BFS waves *)
  mutable steals : int;  (** work-stealing scheduler steals *)
}

type t

val create : ?bound:int -> unit -> t
(** Default bound: 500 distinct fingerprints. *)

val default_bound : int
val bound : t -> int

val record :
  t ->
  fingerprint:int64 ->
  query:string ->
  ms:float ->
  rows:int ->
  failed:bool ->
  gov_abort:bool ->
  index_hits:int ->
  index_misses:int ->
  waves:int ->
  steals:int ->
  unit

val reset : t -> unit
(** Zero the store (the [\stat reset] meta-command). The Db registry is
    deliberately untouched. *)

val size : t -> int
val evicted : t -> int

val entries : t -> entry list
(** A consistent snapshot, highest [total_ms] first. *)

val find : t -> int64 -> entry option
(** Snapshot of one fingerprint's entry. *)

val total_ms : t -> float
val total_calls : t -> int
