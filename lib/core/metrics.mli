(** Minimal JSON emission for observability artifacts: the CLI's
    [--json-metrics] dump (schema ["sqlgraph-metrics-v1"]), NDJSON sinks
    ([--json-metrics-append], the slow-query log) and the bench
    harness's [BENCH_*.json] files (schema ["sqlgraph-bench-v1"]).

    Emission only — nothing in the system reads JSON back, so there is
    no parser and no external dependency (the test suite carries its own
    reader to round-trip this module's output). *)

type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of json list
  | Obj of (string * json) list

(** [num f] — [Float f], or [Null] when [f] is NaN or infinite (JSON has
    no spelling for either). *)
val num : float -> json

(** [to_string j] — pretty-printed (2-space indent), no trailing
    newline.  A non-finite [Float] that bypassed {!num} still emits
    [null], never an invalid token. *)
val to_string : json -> string

(** [to_compact_string j] — same document on a single line (NDJSON
    record shape), no trailing newline. *)
val to_compact_string : json -> string

(** [registry_json reg] — a {!Telemetry.Registry.t} as the [session]
    object of sqlgraph-metrics-v1: counters as ints, gauges as numbers,
    histograms as [{count, sum, p50, p90, p99, max}]. *)
val registry_json : Telemetry.Registry.t -> json

(** [stats_json stats] — an {!Executor.Interp.stats} record as a JSON
    object: top-level build/traverse timings plus [build_phases],
    [graph_index], [traversal], [evaluation] and [governor] sub-objects. *)
val stats_json : Executor.Interp.stats -> json

(** [write_file ~path j] — write [j] and a trailing newline to [path]
    (truncating). *)
val write_file : path:string -> json -> unit

(** {1 The [sqlgraph_metrics] system table (DESIGN.md §14)} *)

(** Columns: [name, kind, field, value, help]. Counters and gauges emit
    one row ([field = "value"]); histograms emit one row per rendered
    field ([count], [sum], [p50], [p90], [p99], [max]). *)
val registry_schema : Storage.Schema.t

val registry_rows : Telemetry.Registry.t -> Storage.Value.t list list

(** [registry_table regs] — the rows of every registry in [regs], in
    order, as one table. *)
val registry_table : Telemetry.Registry.t list -> Storage.Table.t
