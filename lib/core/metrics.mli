(** Minimal JSON emission for observability artifacts: the CLI's
    [--json-metrics] dump (schema ["sqlgraph-metrics-v1"]) and the bench
    harness's [BENCH_*.json] files (schema ["sqlgraph-bench-v1"]).

    Emission only — nothing in the system reads JSON back, so there is no
    parser and no external dependency. *)

type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of json list
  | Obj of (string * json) list

(** [num f] — [Float f], or [Null] when [f] is NaN or infinite (JSON has
    no spelling for either). *)
val num : float -> json

(** [to_string j] — pretty-printed (2-space indent), no trailing
    newline. *)
val to_string : json -> string

(** [stats_json stats] — an {!Executor.Interp.stats} record as a JSON
    object: top-level build/traverse timings plus [build_phases],
    [graph_index], [traversal], [evaluation] and [governor] sub-objects. *)
val stats_json : Executor.Interp.stats -> json

(** [write_file ~path j] — write [j] and a trailing newline to [path]
    (truncating). *)
val write_file : path:string -> json -> unit
