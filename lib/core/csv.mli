(** CSV import/export (RFC-4180-style: quoted fields, embedded commas,
    doubled quotes, CRLF tolerated). The bulk-loading path for bringing
    external edge lists and vertex tables into the engine. *)

exception Csv_error of string
(** Alias of [Error.Csv_error] (the definition lives there so [Db.guard]
    can map it to [Error.Io_error] without a dependency cycle; matching
    on either name catches the same exception). *)

(** [parse_string s] — rows of fields; no header handling, no typing. *)
val parse_string : string -> string list list

(** [table_of_string ~schema ?header s] — build a typed table. Fields are
    cast to the schema's column types ([""] becomes NULL); [header]
    (default [true]) skips the first row. Raises {!Csv_error} on arity or
    conversion failures. *)
val table_of_string :
  schema:Storage.Schema.t -> ?header:bool -> string -> Storage.Table.t

(** [load_file db ~path ~table ~schema ?header ()] — read a CSV file into
    a (new or replaced) table of [db]. Failures (missing file, bad arity,
    cast errors) come back as [Error.Io_error] via [Db.protect]. *)
val load_file :
  Db.t ->
  path:string ->
  table:string ->
  schema:Storage.Schema.t ->
  ?header:bool ->
  unit ->
  (int, Error.t) result

(** [import_untyped db ~path ~table] — read a CSV file whose schema is
    derived from its header row (every column [TStr]; empty header
    cells become [c0], [c1], ...). The CLI's [\i] path. *)
val import_untyped :
  Db.t -> path:string -> table:string -> (int, Error.t) result

(** [save_file resultset ~path] — write a result set with a header row. *)
val save_file : Resultset.t -> path:string -> (unit, Error.t) result
