module V = Storage.Value
module Reg = Telemetry.Registry
module Trace = Telemetry.Trace

(* ------------------------------------------------------------------ *)
(* CRC32 (IEEE 802.3, polynomial 0xEDB88320) — table-driven, pure int. *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32 s =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFF in
  for i = 0 to String.length s - 1 do
    c :=
      Array.unsafe_get table
        ((!c lxor Char.code (String.unsafe_get s i)) land 0xff)
      lxor (!c lsr 8)
  done;
  !c lxor 0xFFFFFFFF

(* slice-by-8 tables: crc_tables.(k).(b) folds byte [b] sitting [k]
   positions ahead, so eight bytes fold with eight table lookups and no
   inter-byte dependency chain — ~4x the byte-at-a-time loop, which
   matters because every appended record is checksummed inline *)
let crc_tables =
  lazy
    (let t0 = Lazy.force crc_table in
     let ts = Array.make_matrix 8 256 0 in
     ts.(0) <- Array.copy t0;
     for n = 0 to 255 do
       let c = ref t0.(n) in
       for k = 1 to 7 do
         c := t0.(!c land 0xff) lxor (!c lsr 8);
         ts.(k).(n) <- !c
       done
     done;
     ts)

let crc32_sub b off len =
  let ts = Lazy.force crc_tables in
  let t0 = Array.unsafe_get ts 0
  and t1 = Array.unsafe_get ts 1
  and t2 = Array.unsafe_get ts 2
  and t3 = Array.unsafe_get ts 3
  and t4 = Array.unsafe_get ts 4
  and t5 = Array.unsafe_get ts 5
  and t6 = Array.unsafe_get ts 6
  and t7 = Array.unsafe_get ts 7 in
  let c = ref 0xFFFFFFFF in
  let i = ref off in
  let stop = off + len - 7 in
  while !i < stop do
    let o = !i in
    let byte k = Char.code (Bytes.unsafe_get b (o + k)) in
    let x = !c in
    c :=
      Array.unsafe_get t7 ((x lxor byte 0) land 0xff)
      lxor Array.unsafe_get t6 (((x lsr 8) lxor byte 1) land 0xff)
      lxor Array.unsafe_get t5 (((x lsr 16) lxor byte 2) land 0xff)
      lxor Array.unsafe_get t4 (((x lsr 24) lxor byte 3) land 0xff)
      lxor Array.unsafe_get t3 (byte 4)
      lxor Array.unsafe_get t2 (byte 5)
      lxor Array.unsafe_get t1 (byte 6)
      lxor Array.unsafe_get t0 (byte 7);
    i := o + 8
  done;
  for j = !i to off + len - 1 do
    c :=
      Array.unsafe_get t0 ((!c lxor Char.code (Bytes.unsafe_get b j)) land 0xff)
      lxor (!c lsr 8)
  done;
  !c lxor 0xFFFFFFFF

(* A tiny growable byte arena used as the log's append buffer.  Records
   are framed in place (length and crc backpatched after encoding) and
   flushed straight from the byte array, so a statement append performs
   no per-record allocation — [Buffer.add_int32_le] and friends box
   their argument, which is measurable against a ~1.5 microsecond
   in-memory INSERT. *)
type arena = { mutable a_data : Bytes.t; mutable a_len : int }

let arena_create n = { a_data = Bytes.create n; a_len = 0 }

let arena_ensure a extra =
  let need = a.a_len + extra in
  let cap = Bytes.length a.a_data in
  if need > cap then begin
    let c = ref (cap * 2) in
    while !c < need do
      c := !c * 2
    done;
    let d = Bytes.create !c in
    Bytes.blit a.a_data 0 d 0 a.a_len;
    a.a_data <- d
  end

let put_char a c =
  arena_ensure a 1;
  Bytes.unsafe_set a.a_data a.a_len c;
  a.a_len <- a.a_len + 1

(* backpatch a little-endian u32 at [pos] (bytes must already exist) *)
let patch_u32 a pos n =
  let d = a.a_data in
  Bytes.unsafe_set d pos (Char.unsafe_chr (n land 0xff));
  Bytes.unsafe_set d (pos + 1) (Char.unsafe_chr ((n lsr 8) land 0xff));
  Bytes.unsafe_set d (pos + 2) (Char.unsafe_chr ((n lsr 16) land 0xff));
  Bytes.unsafe_set d (pos + 3) (Char.unsafe_chr ((n lsr 24) land 0xff))

let put_u16 a n =
  arena_ensure a 2;
  let d = a.a_data and o = a.a_len in
  Bytes.unsafe_set d o (Char.unsafe_chr (n land 0xff));
  Bytes.unsafe_set d (o + 1) (Char.unsafe_chr ((n lsr 8) land 0xff));
  a.a_len <- o + 2

let put_u32 a n =
  arena_ensure a 4;
  patch_u32 a a.a_len n;
  a.a_len <- a.a_len + 4

(* OCaml ints are 63-bit; [asr] sign-extends, so the top byte carries
   the sign and the value round-trips through i64 LE exactly *)
let put_i64 a n =
  arena_ensure a 8;
  let d = a.a_data and o = a.a_len in
  for k = 0 to 7 do
    Bytes.unsafe_set d (o + k) (Char.unsafe_chr ((n asr (8 * k)) land 0xff))
  done;
  a.a_len <- o + 8

let put_i64_bits a (v : int64) =
  arena_ensure a 8;
  let d = a.a_data and o = a.a_len in
  for k = 0 to 7 do
    Bytes.unsafe_set d (o + k)
      (Char.unsafe_chr
         (Int64.to_int (Int64.shift_right_logical v (8 * k)) land 0xff))
  done;
  a.a_len <- o + 8

let put_string a s =
  let n = String.length s in
  arena_ensure a n;
  Bytes.blit_string s 0 a.a_data a.a_len n;
  a.a_len <- a.a_len + n

(* ------------------------------------------------------------------ *)
(* Record codec.

   File header: 8 magic bytes "SQLGWAL1".
   Record:      u32 LE payload length | u32 LE crc32(payload) | payload.
   Payload:     kind byte ('A' autocommit statement, 'S' statement inside
                a transaction, 'C' commit marker) | u16 LE param count |
                params | SQL text to end of payload.
   Param:       'n' (NULL) | 'i' i64 LE | 'f' float bits LE |
                'b' 0/1 byte | 'd' i64 LE epoch days |
                's' u32 LE byte length + bytes.

   Everything is explicit little-endian so a log written on one machine
   replays on any other. Path/Tuple parameters refuse to encode — paths
   cannot be stored (paper §3.3), so they can never reach committed DML
   anyway. *)

let magic = "SQLGWAL1"
let header_size = String.length magic
let frame_overhead = 8 (* length + crc words *)

(* decoding limit: a single statement's payload is capped well below
   anything legitimate, so a corrupt length word cannot trigger a
   gigabyte allocation before the crc check *)
let max_payload = 64 * 1024 * 1024

type kind = Autocommit | Txn_stmt | Commit_marker
type record = kind * V.t array * string

let kind_char = function
  | Autocommit -> 'A'
  | Txn_stmt -> 'S'
  | Commit_marker -> 'C'

let kind_of_char = function
  | 'A' -> Some Autocommit
  | 'S' -> Some Txn_stmt
  | 'C' -> Some Commit_marker
  | _ -> None

let add_u32 buf n = Buffer.add_int32_le buf (Int32.of_int n)

let encode_param a (v : V.t) =
  match v with
  | V.Null -> put_char a 'n'
  | V.Int i ->
    put_char a 'i';
    put_i64 a i
  | V.Float f ->
    put_char a 'f';
    put_i64_bits a (Int64.bits_of_float f)
  | V.Bool b ->
    put_char a 'b';
    put_char a (if b then '\001' else '\000')
  | V.Date d ->
    put_char a 'd';
    put_i64 a d
  | V.Str s ->
    put_char a 's';
    put_u32 a (String.length s);
    put_string a s
  | V.Path _ | V.Tuple _ ->
    raise
      (Relalg.Scalar.Runtime_error
         "wal: path/tuple parameters cannot be logged (flatten with UNNEST \
          first)")

(* append (not replace) one payload at the arena's end *)
let encode_payload a ~kind ~sql ~params =
  if Array.length params > 0xFFFF then
    raise (Relalg.Scalar.Runtime_error "wal: too many statement parameters");
  put_char a (kind_char kind);
  put_u16 a (Array.length params);
  Array.iter (encode_param a) params;
  put_string a sql

let frame payload =
  let buf = Buffer.create (String.length payload + frame_overhead) in
  add_u32 buf (String.length payload);
  add_u32 buf (crc32 payload);
  Buffer.add_string buf payload;
  Buffer.contents buf

exception Corrupt of string

let read_u32 s off = Int32.to_int (String.get_int32_le s off) land 0xFFFFFFFF
let read_i64 s off = Int64.to_int (String.get_int64_le s off)

let decode_payload s =
  let len = String.length s in
  if len < 3 then raise (Corrupt "payload too short");
  let kind =
    match kind_of_char s.[0] with
    | Some k -> k
    | None -> raise (Corrupt (Printf.sprintf "unknown record kind %C" s.[0]))
  in
  let nparams = Char.code s.[1] lor (Char.code s.[2] lsl 8) in
  let off = ref 3 in
  let need n =
    if !off + n > len then raise (Corrupt "truncated parameter");
    let o = !off in
    off := o + n;
    o
  in
  let params =
    Array.init nparams (fun _ ->
        let tag = s.[need 1] in
        match tag with
        | 'n' -> V.Null
        | 'i' -> V.Int (read_i64 s (need 8))
        | 'f' -> V.Float (Int64.float_of_bits (String.get_int64_le s (need 8)))
        | 'b' -> V.Bool (s.[need 1] <> '\000')
        | 'd' -> V.Date (read_i64 s (need 8))
        | 's' ->
          let slen = read_u32 s (need 4) in
          V.Str (String.sub s (need slen) slen)
        | c -> raise (Corrupt (Printf.sprintf "unknown parameter tag %C" c)))
  in
  (kind, params, String.sub s !off (len - !off))

(* A framed record rendered standalone — the shape replication ships
   over the wire and tests synthesize. *)
let encode_record ~kind ~sql ~params =
  let a = arena_create 256 in
  encode_payload a ~kind ~sql ~params;
  frame (Bytes.sub_string a.a_data 0 a.a_len)

(* Reassembly buffer: the replica receives the primary's log as raw byte
   chunks split at arbitrary boundaries (mid-header, mid-crc, mid-
   payload).  Frames are extracted only once complete and crc-checked,
   so a partial tail never reaches the replica's own log — its log is
   frame-aligned by construction and a torn local tail can only come
   from the replica's own crash. *)
module Reassembly = struct
  type buf = { b : Buffer.t; mutable consumed : int }

  let create () = { b = Buffer.create 4096; consumed = 0 }
  let feed r s = Buffer.add_string r.b s
  let pending r = Buffer.length r.b - r.consumed

  let compact r =
    if r.consumed > 0 then
      if r.consumed = Buffer.length r.b then begin
        Buffer.clear r.b;
        r.consumed <- 0
      end
      else if r.consumed > 1 lsl 16 then begin
        let rest = Buffer.sub r.b r.consumed (pending r) in
        Buffer.clear r.b;
        Buffer.add_string r.b rest;
        r.consumed <- 0
      end

  let pop r =
    let avail = pending r in
    let pos = r.consumed in
    if avail < frame_overhead then None
    else begin
      let hdr = Buffer.sub r.b pos frame_overhead in
      let plen = read_u32 hdr 0 in
      let crc = read_u32 hdr 4 in
      if plen > max_payload then raise (Corrupt "absurd record length");
      if avail < frame_overhead + plen then None
      else begin
        let payload = Buffer.sub r.b (pos + frame_overhead) plen in
        if crc32 payload <> crc then raise (Corrupt "checksum mismatch");
        let raw = Buffer.sub r.b pos (frame_overhead + plen) in
        r.consumed <- pos + frame_overhead + plen;
        compact r;
        Some (raw, decode_payload payload)
      end
    end

  let clear r =
    Buffer.clear r.b;
    r.consumed <- 0
end

(* [scan text] walks the log body after the magic header and returns the
   decoded records plus the byte offset of the first torn, checksum-
   failing or undecodable record — everything at and after that offset is
   garbage to be truncated away.  A clean log returns its full length. *)
let scan text =
  let len = String.length text in
  let records = ref [] in
  let pos = ref header_size in
  let valid_end = ref header_size in
  (try
     while !pos < len do
       if !pos + frame_overhead > len then raise (Corrupt "torn header");
       let plen = read_u32 text !pos in
       let crc = read_u32 text (!pos + 4) in
       if plen > max_payload then raise (Corrupt "absurd record length");
       if !pos + frame_overhead + plen > len then raise (Corrupt "torn record");
       let payload = String.sub text (!pos + frame_overhead) plen in
       if crc32 payload <> crc then raise (Corrupt "checksum mismatch");
       records := decode_payload payload :: !records;
       pos := !pos + frame_overhead + plen;
       valid_end := !pos
     done
   with Corrupt _ -> ());
  (List.rev !records, !valid_end)

(* ------------------------------------------------------------------ *)
(* Store state *)

(* Plain-int counters on the append path — registry pushes (hashtable
   lookups) happen only at sync points (flush/fsync/commit/checkpoint/
   attach/close), so a --no-fsync burst pays zero registry cost per
   statement.  [synced] remembers what the registry has already seen. *)
type counters = {
  mutable c_records : int;
  mutable c_bytes : int;
  mutable c_fsyncs : int;
  mutable c_replayed : int;
  mutable c_truncated : int;
  mutable c_checkpoints : int;
}

let mk_counters () =
  {
    c_records = 0;
    c_bytes = 0;
    c_fsyncs = 0;
    c_replayed = 0;
    c_truncated = 0;
    c_checkpoints = 0;
  }

type t = {
  dir : string;
  do_fsync : bool;
  mutable gen : int;
  mutable fd : Unix.file_descr;
  mutable offset : int; (* durable log length: bytes actually written *)
  out : arena;
      (* appended but not yet written — the log's logical end is
         [offset + out.a_len].  With fsync on, every statement flushes,
         so the arena only ever holds the record in flight; with
         --no-fsync it batches appends up to [flush_threshold], which is
         what keeps logging within a few percent of in-memory throughput
         (an acknowledged-but-buffered record dies with the process, the
         mode's documented tradeoff). *)
  mutable stmt_start : int; (* logical offset before the in-flight records *)
  mutable txn_buf : (string * V.t array) list; (* reversed *)
  mutable poisoned : string option;
  mutable registry : Reg.t option;
  mutable closed : bool;
  mutable deferred : bool;
      (* group-commit mode (the server): per-statement [do_sync] is
         suppressed — a group-commit leader later calls [flush_now] +
         [fsync_now] once for a whole batch and acknowledgements wait
         for that shared fsync *)
  readonly : bool;
      (* inspection mode: recovery ran in-memory only — no CURRENT
         rewrite, no tail truncation, no appends ever *)
  stats : counters;
  synced : counters;
}

let flush_threshold = 1 lsl 16

type recovery = {
  rec_gen : int;
  rec_replayed : int;
  rec_skipped : int;
  rec_truncated_bytes : int;
}

let dir t = t.dir
let gen t = t.gen
let readonly t = t.readonly
let current_file dir = Filename.concat dir "CURRENT"
let wal_file dir g = Filename.concat dir (Printf.sprintf "wal-%06d.log" g)
let ckpt_dir dir g = Filename.concat dir (Printf.sprintf "checkpoint-%06d" g)
let wal_path t = wal_file t.dir t.gen

(* Push counter deltas into the session registry (no-op when nothing
   changed or no registry is attached yet). *)
let sync_registry t =
  match t.registry with
  | None -> ()
  | Some reg ->
    let push name help cur seen set =
      if cur > seen then begin
        Reg.inc reg name (cur - seen) ~help;
        set cur
      end
    in
    let s = t.stats and y = t.synced in
    push "sqlgraph_wal_records_total" "WAL records appended" s.c_records
      y.c_records (fun v -> y.c_records <- v);
    push "sqlgraph_wal_bytes_total" "WAL bytes appended" s.c_bytes y.c_bytes
      (fun v -> y.c_bytes <- v);
    push "sqlgraph_wal_fsyncs_total" "WAL fsync calls" s.c_fsyncs y.c_fsyncs
      (fun v -> y.c_fsyncs <- v);
    push "sqlgraph_wal_replayed_total" "WAL records replayed at recovery"
      s.c_replayed y.c_replayed (fun v -> y.c_replayed <- v);
    push "sqlgraph_wal_truncated_bytes_total"
      "Corrupt WAL tail bytes truncated at recovery" s.c_truncated
      y.c_truncated (fun v -> y.c_truncated <- v);
    push "sqlgraph_checkpoints_total" "Checkpoints taken" s.c_checkpoints
      y.c_checkpoints (fun v -> y.c_checkpoints <- v)

let check_usable t =
  if t.closed then raise (Sys_error "wal: store is closed");
  if t.readonly then
    raise (Sys_error "wal: store is open read-only (inspection mode)");
  match t.poisoned with
  | Some why ->
    raise
      (Sys_error
         (Printf.sprintf
            "wal: store is poisoned (%s); close and reopen the data \
             directory to recover"
            why))
  | None -> ()

(* A signal landing mid-write makes [Unix.write] raise [EINTR] (nothing
   written) or return short (partially written); both used to abort the
   append and leave a torn frame for recovery-time truncation to clean
   up.  Treat EINTR as a zero-byte write and stay in the short-write
   loop — the SIGINT cancellation handler makes interrupts routine. *)
let write_retry op =
  match op () with
  | n -> n
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> 0

let write_all fd s =
  let n = String.length s in
  let w = ref 0 in
  while !w < n do
    w := !w + write_retry (fun () -> Unix.write_substring fd s !w (n - !w))
  done

(* Write the buffered tail out.  On a partial write the unwritten suffix
   stays buffered and [offset] counts only what landed, so a retry (or a
   truncate repair) still sees a consistent picture. *)
let flush t =
  let a = t.out in
  if a.a_len > 0 then begin
    let n = a.a_len in
    let w = ref 0 in
    (try
       while !w < n do
         w := !w + write_retry (fun () -> Unix.write t.fd a.a_data !w (n - !w))
       done
     with e ->
       t.offset <- t.offset + !w;
       Bytes.blit a.a_data !w a.a_data 0 (n - !w);
       a.a_len <- n - !w;
       raise e);
    t.offset <- t.offset + n;
    a.a_len <- 0;
    sync_registry t
  end

let logical_end t = t.offset + t.out.a_len

let fsync_path path =
  let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in
  Fun.protect ~finally:(fun () -> Unix.close fd) (fun () -> Unix.fsync fd)

(* Append one framed record at the log's logical end.  The "wal_torn"
   fault site simulates a physical torn write: it leaves *half* the
   frame on disk, poisons the store and re-raises — recovery must then
   truncate the fragment away. *)
let append_payload t ~kind ~sql ~params =
  check_usable t;
  (match
     try
       Fault.hit ~site:"wal_torn";
       None
     with Fault.Injected _ as e -> Some e
   with
  | Some e ->
    (* flush what came before, leave half the frame on disk, poison *)
    let tmp = arena_create 256 in
    encode_payload tmp ~kind ~sql ~params;
    let framed = frame (Bytes.sub_string tmp.a_data 0 tmp.a_len) in
    (try flush t with _ -> ());
    (try write_all t.fd (String.sub framed 0 (String.length framed / 2))
     with _ -> ());
    t.poisoned <- Some "injected torn write";
    raise e
  | None -> ());
  Fault.hit ~site:"wal_append";
  (* span bookkeeping only when tracing is live — the closure a span
     body would capture is the hot path's one remaining allocation *)
  let sp = if Trace.enabled () then Trace.begin_span "wal_append" else -1 in
  let plen =
    (* frame in place: reserve the length and crc words, encode the
       payload after them, then backpatch — no per-record copy *)
    let a = t.out in
    let hdr = a.a_len in
    arena_ensure a frame_overhead;
    a.a_len <- hdr + frame_overhead;
    (match encode_payload a ~kind ~sql ~params with
    | () -> ()
    | exception e ->
      a.a_len <- hdr;
      if sp >= 0 then Trace.end_span sp;
      raise e);
    let plen = a.a_len - hdr - frame_overhead in
    patch_u32 a hdr plen;
    patch_u32 a (hdr + 4) (crc32_sub a.a_data (hdr + frame_overhead) plen);
    (match if a.a_len >= flush_threshold then flush t with
    | () -> ()
    | exception e ->
      if sp >= 0 then Trace.end_span sp;
      raise e);
    plen
  in
  if sp >= 0 then Trace.end_span sp;
  t.stats.c_records <- t.stats.c_records + 1;
  t.stats.c_bytes <- t.stats.c_bytes + plen + frame_overhead

let do_sync t =
  if t.do_fsync && not t.deferred then begin
    Fault.hit ~site:"wal_fsync";
    Trace.span "wal_fsync" (fun () ->
        flush t;
        Unix.fsync t.fd);
    t.stats.c_fsyncs <- t.stats.c_fsyncs + 1;
    sync_registry t
  end

(* Group-commit support (lib/server).  In deferred mode the per-statement
   fsync above is a no-op; instead a group-commit leader (holding the
   server's writer lock) calls [flush_now] to push every session's
   buffered appends to the fd, releases the lock, and calls [fsync_now]
   once for the whole batch — one fsync acknowledges many commits.
   [fsync_now] deliberately holds no lock: the flush target was captured
   under the lock, and O_APPEND writes landing after it are simply
   carried by the next group's fsync. *)
let set_deferred_sync t b = t.deferred <- b

let flush_now t =
  check_usable t;
  flush t

let fsync_now t =
  check_usable t;
  Fault.hit ~site:"group_fsync";
  if t.do_fsync then begin
    Trace.span "group_fsync" (fun () -> Unix.fsync t.fd);
    t.stats.c_fsyncs <- t.stats.c_fsyncs + 1;
    sync_registry t
  end

(* ------------------------------------------------------------------ *)
(* Replication support (lib/server/replication.ml).

   The primary re-reads durable byte ranges of the live log to ship them
   ([read_range] — a fresh read-only fd per call, so shipping races
   neither the O_APPEND writer nor a concurrent catch-up read); the
   replica appends the complete frames it reassembled verbatim
   ([append_frames] — same bytes, same offsets, so a replica's log is a
   byte-identical mirror of the primary's shipped prefix). *)

let read_range t ~pos ~len =
  if len <= 0 then ""
  else begin
    let fd = Unix.openfile (wal_path t) [ Unix.O_RDONLY ] 0 in
    Fun.protect
      ~finally:(fun () -> Unix.close fd)
      (fun () ->
        ignore (Unix.lseek fd pos Unix.SEEK_SET);
        let b = Bytes.create len in
        let r = ref 0 in
        while !r < len do
          let n = write_retry (fun () -> Unix.read fd b !r (len - !r)) in
          if n = 0 then
            raise (Sys_error "wal: range read beyond the flushed end");
          r := !r + n
        done;
        Bytes.unsafe_to_string b)
  end

(* [append_frames t ~count s] — append [count] pre-framed, crc-checked
   records as raw bytes (log-before-apply on the replica: the frame
   lands in the local log before its statement touches the database). *)
let append_frames t ~count s =
  check_usable t;
  flush t;
  write_all t.fd s;
  t.offset <- t.offset + String.length s;
  t.stmt_start <- t.offset;
  t.stats.c_records <- t.stats.c_records + count;
  t.stats.c_bytes <- t.stats.c_bytes + String.length s;
  if t.do_fsync && not t.deferred then begin
    Unix.fsync t.fd;
    t.stats.c_fsyncs <- t.stats.c_fsyncs + 1
  end;
  sync_registry t

(* Truncate the live log back to logical offset [target] — the repair
   path after a failed append/fsync/apply.  A target inside the
   unflushed buffer is a pure memory operation; one behind the durable
   length needs a real ftruncate.  If the repair itself fails the log
   may hold a record memory never applied, so the store poisons itself:
   every later append refuses, and the divergence is bounded to the one
   already-reported error. *)
let truncate_to t target =
  try
    Fault.hit ~site:"wal_truncate";
    Trace.span "wal_truncate" (fun () ->
        if target >= t.offset then t.out.a_len <- target - t.offset
        else begin
          t.out.a_len <- 0;
          Unix.ftruncate t.fd target;
          if t.do_fsync then Unix.fsync t.fd;
          t.offset <- target
        end)
  with e ->
    t.poisoned <-
      Some
        (Printf.sprintf "truncate to %d failed: %s" target
           (Printexc.to_string e));
    raise e

(* ------------------------------------------------------------------ *)
(* Durability hooks (see Db.durability) *)

let dur_log t ~sql ~params =
  check_usable t;
  let start = logical_end t in
  t.stmt_start <- start;
  try
    append_payload t ~kind:Autocommit ~sql ~params;
    do_sync t
  with e ->
    (* bytes may be half-appended or unsynced: erase them before
       surfacing the error, so log and memory still agree (a simulated
       torn write poisons the store and deliberately stays) *)
    if t.poisoned = None then (try truncate_to t start with _ -> ());
    raise e

let dur_abort t () =
  if t.poisoned = None && logical_end t > t.stmt_start then
    truncate_to t t.stmt_start

let dur_buffer t ~sql ~params =
  check_usable t;
  t.txn_buf <- (sql, params) :: t.txn_buf

let dur_commit t () =
  check_usable t;
  let start = logical_end t in
  t.stmt_start <- start;
  let stmts = List.rev t.txn_buf in
  t.txn_buf <- [];
  try
    List.iter
      (fun (sql, params) ->
        append_payload t ~kind:Txn_stmt ~sql ~params)
      stmts;
    append_payload t ~kind:Commit_marker ~sql:"" ~params:[||];
    do_sync t
  with e ->
    if t.poisoned = None then (try truncate_to t start with _ -> ());
    raise e

let dur_rollback t () = t.txn_buf <- []

(* Live sqlgraph_stat_wal provider (DESIGN.md §14): replaces the Db's
   default empty provider with one that reads this store. *)
let register_stat_table t db =
  Db.register_virtual_table db ~name:"sqlgraph_stat_wal" (fun () ->
      Storage.Table.of_rows Db.stat_wal_schema
        [
          [
            Storage.Value.Str t.dir;
            Storage.Value.Int t.gen;
            Storage.Value.Int (logical_end t);
            Storage.Value.Str (wal_path t);
            Storage.Value.Bool t.readonly;
          ];
        ])

let attach t db =
  t.registry <- Some (Db.registry db);
  sync_registry t;
  register_stat_table t db;
  Db.set_durability db
    (Some
       {
         Db.dur_log = (fun ~sql ~params -> dur_log t ~sql ~params);
         dur_abort = dur_abort t;
         dur_buffer = (fun ~sql ~params -> dur_buffer t ~sql ~params);
         dur_commit = dur_commit t;
         dur_rollback = dur_rollback t;
       })

(* ------------------------------------------------------------------ *)
(* Open + recovery *)

let read_file path = In_channel.with_open_bin path In_channel.input_all

let write_file_atomic path text =
  let tmp = path ^ ".tmp" in
  let fd =
    Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
  in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      write_all fd text;
      Unix.fsync fd);
  Sys.rename tmp path;
  try fsync_path (Filename.dirname path) with _ -> ()

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

(* Create wal-g with its magic header, fully synced; returns an append
   fd positioned after the header. *)
let create_wal_file ~do_fsync dir g =
  let path = wal_file dir g in
  (* O_APPEND keeps every write at the true end of file, so appends after
     a repair-truncate can never leave a zero-filled gap *)
  let fd =
    Unix.openfile path
      [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC; Unix.O_APPEND ]
      0o644
  in
  (try
     write_all fd magic;
     if do_fsync then Unix.fsync fd
   with e ->
     (try Unix.close fd with _ -> ());
     raise e);
  fd

(* Remove generations other than [keep], plus rename/checkpoint litter —
   the debris of a crash mid-checkpoint or mid-save. *)
let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let gen_of entry ~prefix ~suffix =
  let lp = String.length prefix and ls = String.length suffix in
  if
    String.length entry = lp + 6 + ls
    && String.starts_with ~prefix entry
    && String.ends_with ~suffix entry
  then int_of_string_opt (String.sub entry lp 6)
  else None

let gc_stale dir ~keep =
  Array.iter
    (fun entry ->
      let full = Filename.concat dir entry in
      let stale_gen prefix suffix =
        match gen_of entry ~prefix ~suffix with
        | Some g -> g <> keep
        | None -> false
      in
      if
        stale_gen "wal-" ".log"
        || stale_gen "checkpoint-" ""
        || contains_sub entry ".tmp"
        || contains_sub entry ".old."
      then try rm_rf full with _ -> ())
    (Sys.readdir dir)

(* Replay scanned records against [db].  'A' records apply immediately;
   'S' records buffer until their 'C' marker — a trailing run of 'S'
   with no marker is an unacknowledged transaction and is discarded. *)
let replay db records =
  let replayed = ref 0 and skipped = ref 0 in
  let apply (sql, params) =
    match Db.exec db ~params sql with
    | Ok _ -> incr replayed
    | Error _ ->
      (* the statement failed when first executed too (its error was
         reported then); recovery preserves the surviving prefix *)
      incr skipped
  in
  let pending = ref [] in
  List.iter
    (fun (kind, params, sql) ->
      match kind with
      | Autocommit -> apply (sql, params)
      | Txn_stmt -> pending := (sql, params) :: !pending
      | Commit_marker ->
        List.iter apply (List.rev !pending);
        pending := [])
    records;
  (!replayed, !skipped)

let open_dir ?(fsync = true) ?(readonly = false) ?(replica = false) dir =
  Db.protect (fun () ->
      Trace.span "wal_replay" (fun () ->
          if not (Sys.file_exists dir) then
            if readonly then raise (Sys_error (dir ^ ": no such data directory"))
            else Sys.mkdir dir 0o755;
          if not (Sys.is_directory dir) then
            raise (Sys_error (dir ^ ": not a directory"));
          let gen =
            let cur = current_file dir in
            if Sys.file_exists cur then
              match int_of_string_opt (String.trim (read_file cur)) with
              | Some g when g >= 0 -> g
              | _ -> raise (Sys_error (cur ^ ": corrupt generation pointer"))
            else if Sys.file_exists (wal_file dir 0) then
              (* crashed during first-time initialisation, before CURRENT
                 was written: generation 0 is fully described by its log *)
              0
            else if (not readonly) && Array.length (Sys.readdir dir) = 0 then begin
              (* fresh directory: initialise generation 0 *)
              let fd = create_wal_file ~do_fsync:fsync dir 0 in
              (try Unix.close fd with _ -> ());
              0
            end
            else
              raise
                (Sys_error
                   (dir
                  ^ ": not a sqlgraph data directory ("
                  ^ (if readonly then "empty or " else "non-empty, ")
                  ^ "no CURRENT pointer)"))
          in
          (* A read-only open recovers purely in memory: the directory is
             never written (no pointer rewrite, no stale-generation GC,
             no tail truncation), so a live writer process is undisturbed
             and the inspection session can never mask a torn tail. *)
          if not readonly then begin
            write_file_atomic (current_file dir) (string_of_int gen);
            gc_stale dir ~keep:gen
          end;
          (* base state: latest checkpoint, or empty at generation 0 *)
          let db =
            if gen = 0 then Db.create ()
            else
              match Persist.load ~dir:(ckpt_dir dir gen) with
              | Ok db -> db
              | Error e ->
                raise (Sys_error ("checkpoint load failed: " ^ Error.to_string e))
          in
          (* scan + replay the live log, truncating the corrupt tail *)
          let path = wal_file dir gen in
          if not (Sys.file_exists path) then begin
            if readonly then raise (Sys_error (path ^ ": missing WAL file"));
            let fd = create_wal_file ~do_fsync:fsync dir gen in
            try Unix.close fd with _ -> ()
          end;
          let text = read_file path in
          if
            String.length text < header_size
            || not (String.equal (String.sub text 0 header_size) magic)
          then raise (Sys_error (path ^ ": bad WAL magic"));
          let records, valid_end = scan text in
          let truncated = String.length text - valid_end in
          if truncated > 0 && not readonly then begin
            Fault.hit ~site:"wal_truncate";
            let fd = Unix.openfile path [ Unix.O_WRONLY ] 0 in
            Fun.protect
              ~finally:(fun () -> Unix.close fd)
              (fun () ->
                Unix.ftruncate fd valid_end;
                if fsync then Unix.fsync fd)
          end;
          let replayed, skipped = replay db records in
          let fd =
            if readonly then Unix.openfile path [ Unix.O_RDONLY ] 0
            else Unix.openfile path [ Unix.O_WRONLY; Unix.O_APPEND ] 0
          in
          let t =
            {
              dir;
              do_fsync = fsync && not readonly;
              gen;
              fd;
              offset = valid_end;
              out = arena_create flush_threshold;
              stmt_start = valid_end;
              txn_buf = [];
              poisoned = None;
              registry = None;
              closed = false;
              deferred = false;
              readonly;
              stats = mk_counters ();
              synced = mk_counters ();
            }
          in
          t.stats.c_replayed <- replayed;
          t.stats.c_truncated <- truncated;
          if readonly then begin
            Db.set_readonly db true;
            register_stat_table t db
          end
          else if replica then begin
            (* hot standby: the store appends (shipped frames, raw) but
               the database refuses session DML, and no durability hooks
               are installed — the primary already framed every record,
               re-logging through exec would double-write *)
            Db.set_readonly db true;
            t.registry <- Some (Db.registry db);
            sync_registry t;
            register_stat_table t db
          end
          else attach t db;
          ( t,
            db,
            {
              rec_gen = gen;
              rec_replayed = replayed;
              rec_skipped = skipped;
              rec_truncated_bytes = truncated;
            } )))

(* ------------------------------------------------------------------ *)
(* Checkpoint: persist the full state as generation g+1, start a fresh
   log, and only then move the CURRENT pointer.  Every step before the
   pointer rename is invisible to recovery (stale generations are
   garbage-collected on open), so a crash anywhere leaves either the old
   generation or the new one — never a mix.  The live log keeps growing
   until the pointer moves, so a failed checkpoint loses nothing. *)

let checkpoint t db =
  Db.protect (fun () ->
      Trace.span "checkpoint" (fun () ->
          check_usable t;
          if Db.in_transaction db then
            raise
              (Relalg.Scalar.Runtime_error
                 "checkpoint refused inside an open transaction (COMMIT or \
                  ROLLBACK first)");
          Fault.hit ~site:"checkpoint";
          (* write out any batched appends so the old generation's log is
             complete before it is superseded (and so nothing buffered
             leaks across the fd swap) *)
          flush t;
          let g' = t.gen + 1 in
          (match Persist.save db ~dir:(ckpt_dir t.dir g') with
          | Ok () -> ()
          | Error e ->
            raise (Sys_error ("checkpoint save failed: " ^ Error.to_string e)));
          let cleanup_new () =
            (try rm_rf (ckpt_dir t.dir g') with _ -> ());
            try Sys.remove (wal_file t.dir g') with _ -> ()
          in
          let fd' =
            try
              Fault.hit ~site:"wal_rotate";
              Trace.span "wal_rotate" (fun () ->
                  create_wal_file ~do_fsync:t.do_fsync t.dir g')
            with e ->
              cleanup_new ();
              raise e
          in
          (try
             Fault.hit ~site:"current_rename";
             write_file_atomic (current_file t.dir) (string_of_int g')
           with e ->
             (try Unix.close fd' with _ -> ());
             cleanup_new ();
             raise e);
          (* the pointer moved: generation g' is now the truth.  Swap the
             session over and garbage-collect the old generation. *)
          let old_gen = t.gen in
          (try Unix.close t.fd with _ -> ());
          t.fd <- fd';
          t.gen <- g';
          t.offset <- header_size;
          t.stmt_start <- header_size;
          t.out.a_len <- 0;
          t.stats.c_checkpoints <- t.stats.c_checkpoints + 1;
          sync_registry t;
          (try rm_rf (ckpt_dir t.dir old_gen) with _ -> ());
          (try Sys.remove (wal_file t.dir old_gen) with _ -> ())))

(* ------------------------------------------------------------------ *)
(* Hot standby (lib/server/replication.ml) *)

let open_replica ?fsync dir = open_dir ?fsync ~replica:true dir
let checkpoint_path ~dir ~gen = ckpt_dir dir gen

(* Full-resync fence: the replica received a complete checkpoint for
   [gen] (already written to [ckpt_dir dir gen] by the caller); start a
   fresh log for that generation and move the pointer.  Ordering matches
   [checkpoint]: the new log exists before CURRENT names it, so a crash
   at any point leaves either the old generation or the new one. *)
let reset_generation t ~gen:g =
  check_usable t;
  let fd' = create_wal_file ~do_fsync:t.do_fsync t.dir g in
  (try write_file_atomic (current_file t.dir) (string_of_int g)
   with e ->
     (try Unix.close fd' with _ -> ());
     raise e);
  (try Unix.close t.fd with _ -> ());
  t.fd <- fd';
  t.gen <- g;
  t.offset <- header_size;
  t.stmt_start <- header_size;
  t.out.a_len <- 0;
  t.txn_buf <- [];
  gc_stale t.dir ~keep:g

(* Promotion: fence the replicated generation behind a checkpoint of the
   applied state (any shipped-but-uncommitted transaction tail in the old
   log is discarded with it), then install the durability hooks and start
   accepting writes.  After this the store is indistinguishable from a
   primary's. *)
let promote t db =
  Db.protect (fun () ->
      Fault.hit ~site:"promote_fence";
      check_usable t;
      (match checkpoint t db with
      | Ok () -> ()
      | Error e -> raise (Sys_error ("promote fence failed: " ^ Error.to_string e)));
      attach t db;
      Db.set_readonly db false)

(* ------------------------------------------------------------------ *)

let close t =
  if not t.closed then begin
    t.closed <- true;
    (try if t.poisoned = None then flush t with _ -> ());
    (try if t.do_fsync then Unix.fsync t.fd with _ -> ());
    (try Unix.close t.fd with _ -> ());
    sync_registry t
  end

(* Simulate kill -9: drop the fd without flush, fsync or truncate
   repair.  Bytes already written survive (they are in the page cache
   exactly as a killed process would leave them); anything still in the
   user-space buffer dies with the "process". *)
let crash_for_testing t =
  if not t.closed then begin
    t.closed <- true;
    t.out.a_len <- 0;
    try Unix.close t.fd with _ -> ()
  end
