(** The paper's §1 baselines: shortest paths in *standard* SQL.

    "Currently there are three customary means to perform reachability and
    shortest path queries in standard SQL: recursion, persistent stored
    modules (PSM) and, to a more limited extent, explicit chains of
    joins." This module implements two of them against the engine, so the
    extension can be compared with what users do without it:

    - {!frontier_distance} — the PSM/recursion style: a procedural driver
      that maintains frontier/visited tables and issues one SQL join per
      BFS level (interpretation overhead, many round trips);
    - {!join_chain_distance} — the "N-1 self-joins" style: one k-way
      self-join query per candidate distance k (full path enumeration,
      combinatorial blow-up on dense graphs).

    Both compute the same unweighted shortest-path distance as
    [CHEAPEST SUM(1)], which the tests assert. *)

(** [recursive_distance db ~edge_table ~src_col ~dst_col ~source ~target
     ~max_hops ()] — the *recursion* baseline: a single
    [WITH RECURSIVE reach (node, d) AS (... UNION ...)] query bounded at
    [max_hops] (the bound is what makes it terminate on cyclic graphs —
    one of the pitfalls the paper's §1 alludes to), answered with
    [MIN(d)]. *)
val recursive_distance :
  Sqlgraph.Db.t ->
  edge_table:string ->
  src_col:string ->
  dst_col:string ->
  source:int ->
  target:int ->
  max_hops:int ->
  unit ->
  int option

(** [frontier_distance db ?governor ~edge_table ~src_col ~dst_col ~source
     ~target ?max_hops ()] — BFS levels as SQL joins over temporary
    frontier / visited tables (dropped afterwards, also on failure).
    [None] when unreachable within [max_hops] (default 64).

    [governor]: because the driver issues many statements, a per-[exec]
    budget would reset every round trip; pass a long-lived
    [Sqlgraph.Governor.t] and the driver checkpoints it once per BFS
    level at site ["sql_bfs"] (raising [Governor.Resource_error] on
    exhaustion). *)
val frontier_distance :
  Sqlgraph.Db.t ->
  ?governor:Sqlgraph.Governor.t ->
  edge_table:string ->
  src_col:string ->
  dst_col:string ->
  source:int ->
  target:int ->
  ?max_hops:int ->
  unit ->
  int option

(** [join_chain_distance db ?governor ~edge_table ~src_col ~dst_col
     ~source ~target ~max_hops ()] — for k = 0, 1, ..., [max_hops]: one
    query with k self-joins testing whether a k-hop path exists.
    Exponential on dense graphs; keep [max_hops] small. [governor] is
    checkpointed once per candidate k at site ["sql_bfs"]. *)
val join_chain_distance :
  Sqlgraph.Db.t ->
  ?governor:Sqlgraph.Governor.t ->
  edge_table:string ->
  src_col:string ->
  dst_col:string ->
  source:int ->
  target:int ->
  max_hops:int ->
  unit ->
  int option
