let exec_exn db sql =
  match Sqlgraph.Db.exec db sql with
  | Ok o -> o
  | Error e -> failwith (Sqlgraph.Error.to_string e)

let query_exn db ?params sql =
  match Sqlgraph.Db.query db ?params sql with
  | Ok r -> r
  | Error e -> failwith (Sqlgraph.Error.to_string e)

let scalar_int rs =
  match Sqlgraph.Resultset.value rs with
  | Storage.Value.Int n -> n
  | v -> failwith ("expected an integer, got " ^ Storage.Value.to_display v)

(* Unique temp-table names so concurrent baselines on one Db don't clash. *)
let counter = ref 0

let fresh_name prefix =
  incr counter;
  Printf.sprintf "%s_%d" prefix !counter

(* The single-query recursion style of the paper's §1. The depth bound
   keeps the (node, d) fixpoint finite on cyclic graphs. *)
let recursive_distance db ~edge_table ~src_col ~dst_col ~source ~target
    ~max_hops () =
  let sql =
    Printf.sprintf
      "WITH RECURSIVE reach (node, d) AS ( \
         SELECT %d, 0 \
         UNION \
         SELECT e.%s, r.d + 1 FROM reach r JOIN %s e ON r.node = e.%s \
         WHERE r.d < %d) \
       SELECT MIN(d) FROM reach WHERE node = %d"
      source dst_col edge_table src_col max_hops target
  in
  match Sqlgraph.Resultset.value (query_exn db sql) with
  | Storage.Value.Int d -> Some d
  | Storage.Value.Null -> None
  | v -> failwith ("unexpected " ^ Storage.Value.to_display v)

(* The procedural drivers below run many statements per logical query,
   so an ungoverned Db.exec budget would reset each round trip; callers
   hand us a long-lived governor instead and we checkpoint it once per
   BFS level / per candidate k at site "sql_bfs". *)
let gov_check governor ~steps ~frontier =
  match governor with
  | None -> ()
  | Some gov ->
    Sqlgraph.Governor.check gov ~site:"sql_bfs" ~steps ~frontier ()

let frontier_distance db ?governor ~edge_table ~src_col ~dst_col ~source
    ~target ?(max_hops = 64) () =
  if source = target then Some 0
  else begin
    let visited = fresh_name "baseline_visited" in
    let frontier = fresh_name "baseline_frontier" in
    let cleanup () =
      ignore (Sqlgraph.Db.exec db (Printf.sprintf "DROP TABLE %s" visited));
      ignore (Sqlgraph.Db.exec db (Printf.sprintf "DROP TABLE %s" frontier))
    in
    let finish r =
      cleanup ();
      r
    in
    ignore (exec_exn db (Printf.sprintf "CREATE TABLE %s (node INTEGER)" visited));
    ignore (exec_exn db (Printf.sprintf "CREATE TABLE %s (node INTEGER)" frontier));
    ignore
      (exec_exn db (Printf.sprintf "INSERT INTO %s VALUES (%d)" visited source));
    ignore
      (exec_exn db (Printf.sprintf "INSERT INTO %s VALUES (%d)" frontier source));
    (* one SQL round per BFS level: expand, dedupe, subtract visited *)
    let expand_sql =
      Printf.sprintf
        "SELECT DISTINCT e.%s AS node FROM %s e JOIN %s f ON e.%s = f.node \
         WHERE e.%s NOT IN (SELECT node FROM %s)"
        dst_col edge_table frontier src_col dst_col visited
    in
    let rec level k =
      if k > max_hops then finish None
      else begin
        let next = query_exn db expand_sql in
        gov_check governor ~steps:1
          ~frontier:(Sqlgraph.Resultset.nrows next);
        let nodes =
          List.filter_map
            (function
              | [ Storage.Value.Int n ] -> Some n
              | _ -> None)
            (Sqlgraph.Resultset.rows next)
        in
        if nodes = [] then finish None
        else if List.mem target nodes then finish (Some k)
        else begin
          let values =
            String.concat ", " (List.map (Printf.sprintf "(%d)") nodes)
          in
          ignore
            (exec_exn db (Printf.sprintf "INSERT INTO %s VALUES %s" visited values));
          ignore (exec_exn db (Printf.sprintf "DELETE FROM %s" frontier));
          ignore
            (exec_exn db
               (Printf.sprintf "INSERT INTO %s VALUES %s" frontier values));
          level (k + 1)
        end
      end
    in
    match level 1 with
    | r -> r
    | exception e ->
      cleanup ();
      raise e
  end

(* One query per candidate distance: e1 JOIN e2 JOIN ... JOIN ek. *)
let chain_query ~edge_table ~src_col ~dst_col k =
  let aliases = List.init k (fun i -> Printf.sprintf "e%d" (i + 1)) in
  let joins =
    match aliases with
    | [] -> assert false
    | first :: rest ->
      List.fold_left
        (fun (acc, prev) alias ->
          ( acc
            ^ Printf.sprintf " JOIN %s %s ON %s.%s = %s.%s" edge_table alias
                prev dst_col alias src_col,
            alias ))
        (Printf.sprintf "%s %s" edge_table first, first)
        rest
      |> fst
  in
  Printf.sprintf "SELECT COUNT(*) FROM %s WHERE e1.%s = ? AND e%d.%s = ?"
    joins src_col k dst_col

let join_chain_distance db ?governor ~edge_table ~src_col ~dst_col ~source
    ~target ~max_hops () =
  if source = target then Some 0
  else begin
    let rec try_k k =
      if k > max_hops then None
      else begin
        gov_check governor ~steps:1 ~frontier:0;
        let sql = chain_query ~edge_table ~src_col ~dst_col k in
        let n =
          scalar_int
            (query_exn db
               ~params:[| Storage.Value.Int source; Storage.Value.Int target |]
               sql)
        in
        if n > 0 then Some k else try_k (k + 1)
      end
    in
    try_k 1
  end
