(* Deterministic discrete-event workload driver (ROADMAP "workload
   simulator + scale-up stress tier").

   N virtual clients sit in a binary-heap event queue over a virtual
   clock (Event_queue).  Popping a client's event draws the next
   statement from that client's seeded SplitMix stream — single-pair
   CHEAPEST, batched pairs tables, kv INSERT/DELETE bursts, UNNEST path
   queries, BEGIN..COMMIT/ROLLBACK transactions, checkpoints, reconnect
   churn, rare edge DML, and governed statements with a tiny budget —
   executes it against the chosen backend, and reschedules the client at
   now + think time.  Think times are drawn from the same streams, so
   the full event trace (virtual time, client, class, SQL) is a pure
   function of the config: the run folds it into a CRC32 chain and two
   runs with the same seed must produce the same digest.

   Wall-clock statement latency never feeds back into virtual time — it
   only goes into a Telemetry.Registry histogram per statement class, so
   the run reports p50/p99/max without perturbing the trace.

   Invariants checked on every event (violations are collected, never
   fatal — the report carries them):
     - governor verdicts honoured: a statement run under an exhausting
       budget must fail with Resource_error, and ordinary statements
       must not fail at all;
     - row-count conservation: INSERT/DELETE row counts must match a
       cheap oracle model (per-key multiset for kv, a counter for
       friends), reconciled against a COUNT query on reconnect/checkpoint;
     - acked commits survive kill-and-recover: the Inproc backend runs
       the WAL with fsync on (with --no-fsync the log batches appends in
       a userspace arena, so a kill would legally lose a suffix of acked
       statements and the invariant would not be checkable), crashes it
       mid-run (fd dropped, no flush — the kill -9 shape) and reopens
       the directory; the recovered row counts must equal the oracle
       exactly, since every acknowledged statement was fsynced before it
       was acknowledged and the crash lands between events;
     - snapshot monotonicity: in the Server backend every session's
       observed snapshot version must never decrease, across reconnects
       included. *)

module V = Storage.Value
module Db = Sqlgraph.Db
module Wal = Sqlgraph.Wal
module Governor = Sqlgraph.Governor
module Error = Sqlgraph.Error
module Registry = Telemetry.Registry
module Server = Sqlgraph_server.Server
module Client = Sqlgraph_server.Client
module Scheduler = Sqlgraph_server.Scheduler

type backend = Inproc | Server_sessions
type tier = Small | Medium | Large

type config = {
  backend : backend;
  seed : int;
  clients : int;
  statements : int;  (* stop once this many virtual statements executed *)
  persons : int;
  friendships : int;  (* directed edges requested from the generator *)
  batch_pairs : int;  (* rows in each client's pairs table *)
  kv_keys : int;  (* key range of the DML-burst table *)
  kill_at : int option;  (* Inproc: crash+recover after this many statements *)
  data_dir : string option;  (* Inproc WAL root; None = fresh temp dir *)
  domains : int;  (* SET parallelism applied to every backend db *)
}

let config_of_tier ?(backend = Inproc) ?(seed = 20170519) ?(domains = 1) tier =
  match tier with
  | Small ->
    {
      backend;
      seed;
      domains;
      clients = 4;
      statements = 50_000;
      persons = 400;
      friendships = 3_000;
      batch_pairs = 16;
      kv_keys = 128;
      kill_at = Some 25_000;
      data_dir = None;
    }
  | Medium ->
    {
      backend;
      seed;
      domains;
      clients = 8;
      statements = 1_000_000;
      persons = 2_000;
      friendships = 16_000;
      batch_pairs = 32;
      kv_keys = 512;
      kill_at = Some 500_000;
      data_dir = None;
    }
  | Large ->
    (* SF100-class: the paper's 448k persons / 40M directed edges —
       the size that pushes the CSR past Csr.auto_compact_threshold
       and onto the packed slot arrays. *)
    {
      backend;
      seed;
      domains;
      clients = 16;
      statements = 2_000_000;
      persons = 448_000;
      friendships = 39_998_000;
      batch_pairs = 64;
      kv_keys = 4_096;
      kill_at = Some 1_000_000;
      data_dir = None;
    }

(* ------------------------------------------------------------------ *)
(* Statement classes *)

type cls =
  | Point
  | Batch
  | Insert_kv
  | Delete_kv
  | Unnest
  | Txn
  | Governed
  | Checkpoint
  | Reconnect
  | Edge_dml

let cls_name = function
  | Point -> "point"
  | Batch -> "batch"
  | Insert_kv -> "insert_kv"
  | Delete_kv -> "delete_kv"
  | Unnest -> "unnest"
  | Txn -> "txn"
  | Governed -> "governed"
  | Checkpoint -> "checkpoint"
  | Reconnect -> "reconnect"
  | Edge_dml -> "edge_dml"

(* weights per mille; DML bursts dominate so a million-statement run
   stays tractable, path queries exercise the graph engine, and the
   rare classes (checkpoint, reconnect, edge DML) fire hundreds of
   times over a medium run without dominating it *)
let mix =
  [
    (Point, 150);
    (Batch, 8);
    (Insert_kv, 350);
    (Delete_kv, 260);
    (Unnest, 25);
    (Txn, 50);
    (Governed, 25);
    (Checkpoint, 2);
    (Reconnect, 5);
    (Edge_dml, 2);
  ]

let mix_total = List.fold_left (fun a (_, w) -> a + w) 0 mix

let pick_cls rng =
  let r = Datagen.Splitmix.int rng ~bound:mix_total in
  let rec go acc = function
    | [] -> Point
    | (c, w) :: rest -> if r < acc + w then c else go (acc + w) rest
  in
  go 0 mix

(* mean virtual think time per class, seconds; jittered 0.5x..1.5x from
   the client's stream so event interleaving is irregular but exactly
   reproducible *)
let think_mean = function
  | Point -> 0.005
  | Batch -> 0.050
  | Insert_kv -> 0.001
  | Delete_kv -> 0.001
  | Unnest -> 0.010
  | Txn -> 0.020
  | Governed -> 0.005
  | Checkpoint -> 0.100
  | Reconnect -> 0.050
  | Edge_dml -> 0.020

let think cls rng =
  think_mean cls *. (0.5 +. Datagen.Splitmix.float rng)

let point_sql s d =
  Printf.sprintf
    "SELECT CHEAPEST SUM(1) WHERE %d REACHES %d OVER friends EDGE (src, dst)"
    s d

let unnest_sql s d =
  Printf.sprintf
    "SELECT R.ordinality, R.src, R.dst FROM (SELECT CHEAPEST SUM(e: 1) AS \
     (c, p) WHERE %d REACHES %d OVER friends e EDGE (src, dst)) T, \
     UNNEST(T.p) WITH ORDINALITY AS R"
    s d

let batch_sql cid =
  Printf.sprintf
    "SELECT s, d, CHEAPEST SUM(1) AS c FROM pairs_c%d WHERE s REACHES d \
     OVER friends EDGE (src, dst)"
    cid

(* ------------------------------------------------------------------ *)
(* Report *)

type class_stats = {
  cls : string;
  count : int;
  mean : float;
  p50 : float;
  p99 : float;
  lat_max : float;
}

type report = {
  statements : int;
  events : int;
  virtual_seconds : float;
  wall_seconds : float;
  violation_count : int;
  violations : string list;  (* first few, for the console *)
  digest : int;  (* CRC32 chain over the generated event trace *)
  outcome_digest : int;  (* ... and over outcome summaries *)
  recoveries : int;
  checkpoints : int;
  reconnects : int;
  classes : class_stats list;
  vertices : int;
  edges : int;
}

(* ------------------------------------------------------------------ *)
(* Oracle: the cheap reference model DML is checked against *)

type oracle = {
  mutable kv_total : int;
  per_key : int array;
  mutable friends_rows : int;
}

(* ------------------------------------------------------------------ *)
(* Backends *)

type inproc = {
  mutable store : Wal.t;
  mutable db : Db.t;
  dir : string;
}

type session = {
  mutable client : Client.t;
  mutable last_snapshot : int;
}

type exec_ctx =
  | In_ctx of inproc
  | Srv_ctx of Server.t * session array

(* outcome summary: deterministic description folded into the outcome
   digest ("ok:<rows>" / "err:<category>") *)
let summary_of_result = function
  | Ok (Db.Selected r) -> Printf.sprintf "ok:rows=%d" (Sqlgraph.Resultset.nrows r)
  | Ok (Db.Inserted n) -> Printf.sprintf "ok:ins=%d" n
  | Ok (Db.Deleted n) -> Printf.sprintf "ok:del=%d" n
  | Ok (Db.Updated n) -> Printf.sprintf "ok:upd=%d" n
  | Ok _ -> "ok"
  | Error (Error.Resource_error { kind; _ }) ->
    Printf.sprintf "err:resource:%s" (Error.resource_kind_name kind)
  | Error _ -> "err"

let mutate_graph db ~ids ~seed ~statements =
  (* Seeded DML burst over the friends edge table — the mutation shape
     the simulator's Edge_dml class applies, packaged for the
     cross-engine byte-identity regression test. *)
  let rng = Datagen.Splitmix.create ~seed in
  let m = Array.length ids in
  for _ = 1 to statements do
    let a = ids.(Datagen.Splitmix.int rng ~bound:m) in
    let b = ids.(Datagen.Splitmix.int rng ~bound:m) in
    let sql =
      if Datagen.Splitmix.int rng ~bound:3 = 0 then
        Printf.sprintf "DELETE FROM friends WHERE src = %d AND dst = %d" a b
      else
        Printf.sprintf
          "INSERT INTO friends VALUES (%d, %d, '2012-06-01', 1.0)" a b
    in
    match Db.exec db sql with
    | Ok _ -> ()
    | Error e -> failwith ("mutate_graph: " ^ Error.to_string e)
  done

(* ------------------------------------------------------------------ *)
(* The run *)

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    Unix.rmdir path
  | _ -> Sys.remove path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let fresh_temp_dir () =
  let path = Filename.temp_file "sqlgraph-sim" "" in
  Sys.remove path;
  Sys.mkdir path 0o755;
  path

let run cfg =
  if cfg.clients < 1 then invalid_arg "Sim: clients < 1";
  (* reconnect churn writes into sockets the peer may already have
     closed; surface that as EPIPE, not a process kill *)
  if Sys.os_type = "Unix" then
    (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with _ -> ());
  let graph =
    Datagen.Snb.generate_custom ~persons:cfg.persons
      ~friendships:cfg.friendships ~seed:cfg.seed ()
  in
  let ids = Datagen.Snb.person_ids graph in
  let nids = Array.length ids in
  let registry = Registry.create () in
  let violations = ref [] in
  let violation_count = ref 0 in
  let violate fmt =
    Printf.ksprintf
      (fun msg ->
        incr violation_count;
        if !violation_count <= 20 then violations := msg :: !violations)
      fmt
  in
  let oracle =
    {
      kv_total = 0;
      per_key = Array.make cfg.kv_keys 0;
      friends_rows = graph.Datagen.Snb.n_directed_edges;
    }
  in
  let recoveries = ref 0 in
  let checkpoints = ref 0 in
  let reconnects = ref 0 in
  let digest = ref 0 in
  let outcome_digest = ref 0 in
  let chain d s = d := Wal.crc32 (Printf.sprintf "%08x|%s" !d s) in
  let observe cls dt =
    Registry.observe registry ("sim_" ^ cls_name cls ^ "_seconds") dt
      ~help:"Simulated statement latency"
  in
  (* per-client pairs tables, preloaded once: the batched workload *)
  let pairs_tables =
    Array.init cfg.clients (fun i ->
        Datagen.Workload.pairs_table
          (Datagen.Workload.random_pairs
             ~seed:(cfg.seed + 101 + i)
             ~ids cfg.batch_pairs))
  in
  let load_base db =
    Db.load_table db ~name:"persons" graph.Datagen.Snb.persons;
    Db.load_table db ~name:"friends" graph.Datagen.Snb.friends;
    Array.iteri
      (fun i t -> Db.load_table db ~name:(Printf.sprintf "pairs_c%d" i) t)
      pairs_tables;
    (match Db.exec db "CREATE TABLE kv (k INTEGER, v INTEGER)" with
    | Ok _ -> ()
    | Error e -> failwith ("sim setup: " ^ Error.to_string e));
    match Db.create_graph_index db ~table:"friends" ~src:"src" ~dst:"dst" with
    | Ok () -> ()
    | Error e -> failwith ("sim setup index: " ^ Error.to_string e)
  in
  let own_dir = cfg.data_dir = None in
  let dir =
    match cfg.data_dir with Some d -> d | None -> fresh_temp_dir ()
  in
  let cleanup_ctx = ref (fun () -> ()) in
  let finally () =
    !cleanup_ctx ();
    if own_dir then rm_rf dir
  in
  Fun.protect ~finally (fun () ->
      let ctx =
        match cfg.backend with
        | Inproc -> (
          match Wal.open_dir ~fsync:true dir with
          | Error e -> failwith ("sim open_dir: " ^ Error.to_string e)
          | Ok (store, db, _) ->
            Db.set_parallelism db cfg.domains;
            load_base db;
            (* checkpoint the bulk-loaded base state: load_table skips
               the log, so recovery must start from this snapshot *)
            (match Wal.checkpoint store db with
            | Ok () -> ()
            | Error e -> failwith ("sim checkpoint: " ^ Error.to_string e));
            let ip = { store; db; dir } in
            cleanup_ctx := (fun () -> try Wal.close ip.store with _ -> ());
            In_ctx ip)
        | Server_sessions ->
          let db = Db.create () in
          Db.set_parallelism db cfg.domains;
          load_base db;
          let config =
            {
              Scheduler.default_config with
              max_sessions = cfg.clients + 4;
              write_high_water = cfg.clients + 4;
            }
          in
          let srv = Server.create ~config ~db ~store:None () in
          let connect () =
            let a, b =
              Unix.socketpair ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0
            in
            Server.attach srv a;
            Client.of_fd b
          in
          let sessions =
            Array.init cfg.clients (fun _ ->
                { client = connect (); last_snapshot = -1 })
          in
          cleanup_ctx :=
            (fun () ->
              Array.iter (fun s -> try Client.close s.client with _ -> ())
                sessions;
              Server.shutdown srv);
          Srv_ctx (srv, sessions)
      in
      (* ---- execution helpers ---------------------------------------- *)
      let exec_inproc ?budget ip sql =
        let r = Db.exec ip.db ?budget sql in
        (summary_of_result r, r)
      in
      let session_note sess resp =
        (match Client.snapshot resp with
        | Some v ->
          if v < sess.last_snapshot then
            violate "snapshot regressed: %d after %d" v sess.last_snapshot;
          sess.last_snapshot <- max v sess.last_snapshot
        | None -> ());
        resp
      in
      let exec_server sessions cid sql =
        let sess = sessions.(cid) in
        let resp =
          try session_note sess (Client.request ~timeout_ms:60_000 sess.client sql)
          with Client.Closed m ->
            violate "session %d died: %s" cid m;
            []
        in
        let term = Client.terminal resp in
        let summary =
          if Client.is_ok resp then begin
            match String.split_on_char ' ' term with
            | "OK" :: "SELECT" :: rest | "OK" :: "EXPLAIN" :: rest -> (
              match
                List.find_map
                  (fun tok ->
                    if String.length tok > 5 && String.sub tok 0 5 = "rows=" then
                      int_of_string_opt
                        (String.sub tok 5 (String.length tok - 5))
                    else None)
                  rest
              with
              | Some n -> Printf.sprintf "ok:rows=%d" n
              | None -> "ok")
            | "OK" :: "INSERT" :: n :: _ ->
              Printf.sprintf "ok:ins=%s" n
            | "OK" :: "DELETE" :: n :: _ ->
              Printf.sprintf "ok:del=%s" n
            | _ -> "ok"
          end
          else "err:" ^ term
        in
        (summary, term)
      in
      (* count parsers shared by the invariant checks *)
      let inserted_of summary =
        if String.length summary > 7 && String.sub summary 0 7 = "ok:ins=" then
          int_of_string_opt (String.sub summary 7 (String.length summary - 7))
        else None
      in
      let deleted_of summary =
        if String.length summary > 7 && String.sub summary 0 7 = "ok:del=" then
          int_of_string_opt (String.sub summary 7 (String.length summary - 7))
        else None
      in
      let rows_of summary =
        if String.length summary > 8 && String.sub summary 0 8 = "ok:rows=" then
          int_of_string_opt (String.sub summary 8 (String.length summary - 8))
        else None
      in
      let count_table name =
        let sql = Printf.sprintf "SELECT COUNT(*) FROM %s" name in
        match ctx with
        | In_ctx ip -> (
          match Db.query ip.db sql with
          | Ok r -> (
            match Sqlgraph.Resultset.rows r with
            | [ [ V.Int n ] ] -> Some n
            | _ -> None)
          | Error _ -> None)
        | Srv_ctx _ -> None
      in
      let reconcile site =
        (* row-count conservation against the oracle; Inproc reads the
           authoritative Db, Server mode parses the ROW line *)
        match ctx with
        | In_ctx _ -> (
          (match count_table "kv" with
          | Some n when n <> oracle.kv_total ->
            violate "%s: kv has %d rows, oracle %d" site n oracle.kv_total
          | _ -> ());
          match count_table "friends" with
          | Some n when n <> oracle.friends_rows ->
            violate "%s: friends has %d rows, oracle %d" site n
              oracle.friends_rows
          | _ -> ())
        | Srv_ctx (_, sessions) ->
          List.iter
            (fun (table, expect) ->
              let resp =
                try
                  session_note sessions.(0)
                    (Client.request ~timeout_ms:60_000 sessions.(0).client
                       (Printf.sprintf "SELECT COUNT(*) FROM %s" table))
                with Client.Closed _ -> []
              in
              let row =
                List.find_opt
                  (fun l -> String.length l > 4 && String.sub l 0 4 = "ROW ")
                  resp
              in
              match row with
              | Some l -> (
                match
                  int_of_string_opt
                    (String.trim (String.sub l 4 (String.length l - 4)))
                with
                | Some n when n <> expect ->
                  violate "%s: %s has %d rows, oracle %d" site table n expect
                | _ -> ())
              | None -> violate "%s: COUNT(*) FROM %s returned no row" site table)
            [ ("kv", oracle.kv_total); ("friends", oracle.friends_rows) ]
      in
      (* ---- the event loop ------------------------------------------- *)
      let q = Event_queue.create () in
      let rngs =
        Array.init cfg.clients (fun i ->
            Datagen.Splitmix.create ~seed:(cfg.seed + (7919 * (i + 1))))
      in
      for i = 0 to cfg.clients - 1 do
        Event_queue.push q ~time:(float_of_int i *. 1e-4) i
      done;
      let executed = ref 0 in
      let events = ref 0 in
      let vclock = ref 0. in
      let killed = ref false in
      let t_wall0 = Unix.gettimeofday () in
      let maybe_kill () =
        match (cfg.kill_at, ctx) with
        | Some at, In_ctx ip when (not !killed) && !executed >= at ->
          killed := true;
          chain digest "KILL";
          (* the kill -9 shape: drop the fd mid-run, no flush, then
             recover the directory and demand the oracle state back *)
          Wal.crash_for_testing ip.store;
          (match Wal.open_dir ~fsync:true ip.dir with
          | Error e ->
            violate "recovery failed: %s" (Error.to_string e)
          | Ok (store', db', _) ->
            (* parallelism is session state, not durable state: re-apply
               it to the recovered db *)
            Db.set_parallelism db' cfg.domains;
            ip.store <- store';
            ip.db <- db';
            cleanup_ctx := (fun () -> try Wal.close store' with _ -> ());
            (match
               Db.create_graph_index db' ~table:"friends" ~src:"src" ~dst:"dst"
             with
            | Ok () -> ()
            | Error e -> violate "post-recovery index: %s" (Error.to_string e));
            incr recoveries;
            reconcile "kill-and-recover")
        | Some _, Srv_ctx _ | Some _, In_ctx _ | None, _ -> ()
      in
      let exec_one cid cls =
        let rng = rngs.(cid) in
        let pick_id () = ids.(Datagen.Splitmix.int rng ~bound:nids) in
        let pick_pair () =
          let s = pick_id () in
          let rec other tries =
            let d = pick_id () in
            if d <> s || tries > 8 then d else other (tries + 1)
          in
          (s, other 0)
        in
        match cls with
        | Point | Unnest ->
          let s, d = pick_pair () in
          let sql = if cls = Point then point_sql s d else unnest_sql s d in
          let summary =
            match ctx with
            | In_ctx ip ->
              let summary, r = exec_inproc ip sql in
              (match r with
              | Error e -> violate "%s failed: %s" (cls_name cls) (Error.to_string e)
              | Ok _ -> ());
              summary
            | Srv_ctx (_, sessions) ->
              let summary, term = exec_server sessions cid sql in
              if not (String.length summary >= 2 && String.sub summary 0 2 = "ok")
              then violate "%s failed: %s" (cls_name cls) term;
              summary
          in
          (sql, summary, 1)
        | Batch ->
          let sql = batch_sql cid in
          let summary =
            match ctx with
            | In_ctx ip ->
              let summary, r = exec_inproc ip sql in
              (match r with
              | Ok (Db.Selected rs) ->
                let n = Sqlgraph.Resultset.nrows rs in
                if n > cfg.batch_pairs then
                  violate "batch returned %d rows for %d pairs" n cfg.batch_pairs
              | Ok _ -> ()
              | Error e -> violate "batch failed: %s" (Error.to_string e));
              summary
            | Srv_ctx (_, sessions) ->
              let summary, term = exec_server sessions cid sql in
              (match rows_of summary with
              | Some n when n > cfg.batch_pairs ->
                violate "batch returned %d rows for %d pairs" n cfg.batch_pairs
              | Some _ -> ()
              | None -> violate "batch failed: %s" term);
              summary
          in
          (sql, summary, 1)
        | Insert_kv ->
          let k = Datagen.Splitmix.int rng ~bound:cfg.kv_keys in
          let v = Datagen.Splitmix.int rng ~bound:1_000_000 in
          let sql = Printf.sprintf "INSERT INTO kv VALUES (%d, %d)" k v in
          let summary =
            match ctx with
            | In_ctx ip -> fst (exec_inproc ip sql)
            | Srv_ctx (_, sessions) -> fst (exec_server sessions cid sql)
          in
          (match inserted_of summary with
          | Some 1 ->
            oracle.per_key.(k) <- oracle.per_key.(k) + 1;
            oracle.kv_total <- oracle.kv_total + 1
          | _ -> violate "kv insert: unexpected outcome %s" summary);
          (sql, summary, 1)
        | Delete_kv ->
          let k = Datagen.Splitmix.int rng ~bound:cfg.kv_keys in
          let sql = Printf.sprintf "DELETE FROM kv WHERE k = %d" k in
          let summary =
            match ctx with
            | In_ctx ip -> fst (exec_inproc ip sql)
            | Srv_ctx (_, sessions) -> fst (exec_server sessions cid sql)
          in
          (match deleted_of summary with
          | Some n ->
            if n <> oracle.per_key.(k) then
              violate "kv delete k=%d removed %d rows, oracle %d" k n
                oracle.per_key.(k);
            oracle.kv_total <- oracle.kv_total - oracle.per_key.(k);
            oracle.per_key.(k) <- 0
          | None -> violate "kv delete: unexpected outcome %s" summary);
          (sql, summary, 1)
        | Edge_dml ->
          let s, d = pick_pair () in
          let sql =
            Printf.sprintf "INSERT INTO friends VALUES (%d, %d, '2012-06-01', 1.0)"
              s d
          in
          let summary =
            match ctx with
            | In_ctx ip -> fst (exec_inproc ip sql)
            | Srv_ctx (_, sessions) -> fst (exec_server sessions cid sql)
          in
          (match inserted_of summary with
          | Some 1 -> oracle.friends_rows <- oracle.friends_rows + 1
          | _ -> violate "edge insert: unexpected outcome %s" summary);
          (sql, summary, 1)
        | Txn ->
          let n_inner = 1 + Datagen.Splitmix.int rng ~bound:4 in
          let commit = Datagen.Splitmix.int rng ~bound:4 > 0 in
          let inner =
            List.init n_inner (fun _ ->
                let k = Datagen.Splitmix.int rng ~bound:cfg.kv_keys in
                let v = Datagen.Splitmix.int rng ~bound:1_000_000 in
                (k, Printf.sprintf "INSERT INTO kv VALUES (%d, %d)" k v))
          in
          let stmts =
            ("BEGIN" :: List.map snd inner)
            @ [ (if commit then "COMMIT" else "ROLLBACK") ]
          in
          let ok = ref true in
          List.iter
            (fun sql ->
              let summary =
                match ctx with
                | In_ctx ip -> fst (exec_inproc ip sql)
                | Srv_ctx (_, sessions) -> fst (exec_server sessions cid sql)
              in
              if not (String.length summary >= 2 && String.sub summary 0 2 = "ok")
              then begin
                ok := false;
                violate "txn statement failed: %s (%s)" sql summary
              end)
            stmts;
          (* all-or-nothing: the oracle applies the whole transaction at
             COMMIT and nothing at ROLLBACK *)
          if !ok && commit then
            List.iter
              (fun (k, _) ->
                oracle.per_key.(k) <- oracle.per_key.(k) + 1;
                oracle.kv_total <- oracle.kv_total + 1)
              inner;
          (String.concat "; " stmts, (if !ok then "ok" else "err"), List.length stmts)
        | Governed -> (
          (* tiny budget must trip: pairs_c<cid> has batch_pairs >= 2
             rows, the budget allows 1 — anything but Resource_error
             Rows is a governor violation *)
          let sql = Printf.sprintf "SELECT s, d FROM pairs_c%d" cid in
          match ctx with
          | In_ctx ip ->
            let budget = Governor.budget ~max_rows:1 () in
            let summary, r = exec_inproc ~budget ip sql in
            (match r with
            | Error (Error.Resource_error { kind = Error.Rows; _ }) -> ()
            | Ok _ -> violate "governed statement was not limited"
            | Error e ->
              violate "governed statement: unexpected error %s"
                (Error.to_string e));
            (sql, summary, 1)
          | Srv_ctx (_, sessions) ->
            (* the server's budget is config-wide; run the statement
               ungoverned and only check it succeeds *)
            let summary, term = exec_server sessions cid sql in
            if not (Client.is_ok [ term ]) then
              violate "pairs scan failed: %s" term;
            (sql, summary, 1))
        | Checkpoint -> (
          match ctx with
          | In_ctx ip ->
            (match Wal.checkpoint ip.store ip.db with
            | Ok () -> incr checkpoints
            | Error e -> violate "checkpoint failed: %s" (Error.to_string e));
            ("\\checkpoint", "ok", 1)
          | Srv_ctx _ ->
            (* no meta-commands over the wire: a checkpoint event in
               server mode reconciles counts against the oracle instead *)
            reconcile "checkpoint";
            incr checkpoints;
            ("\\reconcile", "ok", 1))
        | Reconnect -> (
          match ctx with
          | In_ctx _ ->
            reconcile "reconnect";
            incr reconnects;
            ("\\reconcile", "ok", 1)
          | Srv_ctx (srv, sessions) ->
            let sess = sessions.(cid) in
            (try Client.close sess.client with _ -> ());
            let a, b =
              Unix.socketpair ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0
            in
            Server.attach srv a;
            sess.client <- Client.of_fd b;
            (* snapshot monotonicity must hold across the reconnect:
               last_snapshot survives, and the fresh session's first
               response re-checks it *)
            incr reconnects;
            ("\\reconnect", "ok", 1))
      in
      let rec loop () =
        if !executed < cfg.statements then
          match Event_queue.pop q with
          | None -> ()
          | Some (t, cid) ->
            vclock := t;
            maybe_kill ();
            let rng = rngs.(cid) in
            let cls = pick_cls rng in
            let t0 = Unix.gettimeofday () in
            let sql, summary, nstmts = exec_one cid cls in
            let dt = Unix.gettimeofday () -. t0 in
            observe cls dt;
            chain digest
              (Printf.sprintf "%.6f|%d|%s|%s" t cid (cls_name cls) sql);
            chain outcome_digest summary;
            executed := !executed + nstmts;
            incr events;
            Event_queue.push q ~time:(t +. think cls rng) cid;
            loop ()
      in
      loop ();
      (* end-of-run reconciliation closes the books *)
      reconcile "final";
      let wall = Unix.gettimeofday () -. t_wall0 in
      let classes =
        List.filter_map
          (fun (c, _) ->
            match
              Registry.percentiles registry ("sim_" ^ cls_name c ^ "_seconds")
            with
            | Some p when p.Registry.count > 0 ->
              Some
                {
                  cls = cls_name c;
                  count = p.Registry.count;
                  mean = p.Registry.sum /. float_of_int p.Registry.count;
                  p50 = p.Registry.p50;
                  p99 = p.Registry.p99;
                  lat_max = p.Registry.max;
                }
            | _ -> None)
          mix
      in
      {
        statements = !executed;
        events = !events;
        virtual_seconds = !vclock;
        wall_seconds = wall;
        violation_count = !violation_count;
        violations = List.rev !violations;
        digest = !digest;
        outcome_digest = !outcome_digest;
        recoveries = !recoveries;
        checkpoints = !checkpoints;
        reconnects = !reconnects;
        classes;
        vertices = graph.Datagen.Snb.n_persons;
        edges = graph.Datagen.Snb.n_directed_edges;
      })

(* ------------------------------------------------------------------ *)
(* Rendering *)

let json_report cfg (r : report) =
  let module M = Sqlgraph.Metrics in
  M.Obj
    [
      ("schema", M.String "sqlgraph-bench-v1");
      ("suite", M.String "sim");
      ( "backend",
        M.String
          (match cfg.backend with
          | Inproc -> "inproc"
          | Server_sessions -> "server") );
      ("seed", M.Int cfg.seed);
      ("clients", M.Int cfg.clients);
      ("domains", M.Int cfg.domains);
      ("statements", M.Int r.statements);
      ("events", M.Int r.events);
      ("vertices", M.Int r.vertices);
      ("edges", M.Int r.edges);
      ("virtual_seconds", M.num r.virtual_seconds);
      ("wall_seconds", M.num r.wall_seconds);
      ( "statements_per_sec",
        M.num (float_of_int r.statements /. Float.max 1e-9 r.wall_seconds) );
      ("digest", M.String (Printf.sprintf "%08x" r.digest));
      ("outcome_digest", M.String (Printf.sprintf "%08x" r.outcome_digest));
      ("violations", M.Int r.violation_count);
      ("violation_samples", M.List (List.map (fun s -> M.String s) r.violations));
      ("recoveries", M.Int r.recoveries);
      ("checkpoints", M.Int r.checkpoints);
      ("reconnects", M.Int r.reconnects);
      ( "results",
        M.List
          (List.map
             (fun c ->
               M.Obj
                 [
                   ("name", M.String ("sim/" ^ c.cls));
                   ("count", M.Int c.count);
                   ("mean_seconds", M.num c.mean);
                   ("p50_seconds", M.num c.p50);
                   ("p99_seconds", M.num c.p99);
                   ("max_seconds", M.num c.lat_max);
                 ])
             r.classes) );
    ]

let print_report (r : report) =
  Printf.printf
    "sim: %d statements in %d events, %.1f virtual s, %.2f wall s (%.0f \
     stmts/s)\n"
    r.statements r.events r.virtual_seconds r.wall_seconds
    (float_of_int r.statements /. Float.max 1e-9 r.wall_seconds);
  Printf.printf
    "trace digest %08x, outcome digest %08x; %d recoveries, %d checkpoints, \
     %d reconnects\n"
    r.digest r.outcome_digest r.recoveries r.checkpoints r.reconnects;
  Printf.printf "%-12s %10s %12s %12s %12s %12s\n" "class" "count" "mean_ms"
    "p50_ms" "p99_ms" "max_ms";
  List.iter
    (fun c ->
      Printf.printf "%-12s %10d %12.3f %12.3f %12.3f %12.3f\n" c.cls c.count
        (1e3 *. c.mean) (1e3 *. c.p50) (1e3 *. c.p99) (1e3 *. c.lat_max))
    r.classes;
  if r.violation_count = 0 then Printf.printf "invariants: OK (0 violations)\n%!"
  else begin
    Printf.printf "invariants: %d VIOLATIONS\n" r.violation_count;
    List.iter (fun v -> Printf.printf "  - %s\n" v) r.violations;
    Printf.printf "%!"
  end
