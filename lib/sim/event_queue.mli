(** Binary min-heap event queue over the simulator's virtual clock.

    Events pop in nondecreasing time order; equal times pop in push
    order (FIFO tie-break by an internal sequence number), so the pop
    sequence is a pure function of the push sequence — the determinism
    guarantee the workload driver's trace digest relies on. *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> time:float -> 'a -> unit
(** Schedule [payload] at virtual [time]. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the earliest event, [None] when empty. *)
