(** Deterministic discrete-event workload driver (the stress tier).

    N simulated clients live in a binary-heap event queue
    ({!Event_queue}) over a virtual clock.  Each client draws statements
    from its own seeded SplitMix stream — single-pair CHEAPEST queries,
    batched pairs tables, kv INSERT/DELETE bursts, UNNEST path
    extraction, BEGIN..COMMIT/ROLLBACK transactions, governed statements
    under an exhausting budget, checkpoints, reconnect churn and rare
    edge DML — executes against the chosen backend, and reschedules
    itself after a jittered per-class think time.  The whole event trace
    is a pure function of the config: same seed ⇒ same {!report.digest}.

    Every event checks invariants: governor verdicts honoured, DML row
    counts conserved against a cheap oracle model, acked commits
    surviving a scripted mid-run kill-and-recover (Inproc), and
    per-session snapshot monotonicity across reconnects (Server).
    Violations are collected into the report, never raised.

    Wall-clock latency per statement feeds a {!Telemetry.Registry}
    histogram per class (p50/p99/max in {!report.classes}); it never
    feeds back into virtual time, so timing noise cannot perturb the
    trace. *)

type backend =
  | Inproc  (** WAL-backed {!Sqlgraph.Db} in a temp dir; supports kill_at *)
  | Server_sessions
      (** the PR 6 multi-session server over socketpairs; supports
          reconnect churn and snapshot-monotonicity checks *)

type tier = Small | Medium | Large

type config = {
  backend : backend;
  seed : int;
  clients : int;
  statements : int;  (** stop once this many statements executed *)
  persons : int;
  friendships : int;  (** undirected friendships (directed edges = 2×) *)
  batch_pairs : int;  (** rows in each client's pairs table *)
  kv_keys : int;  (** key range of the DML-burst table *)
  kill_at : int option;
      (** Inproc only: [Wal.crash_for_testing] + reopen after this many
          statements, then reconcile against the oracle *)
  data_dir : string option;  (** Inproc WAL root; [None] = fresh temp dir *)
  domains : int;
      (** SET parallelism applied to every backend db (and re-applied after
          crash recovery — parallelism is session state, not durable state) *)
}

val config_of_tier :
  ?backend:backend -> ?seed:int -> ?domains:int -> tier -> config
(** Small ≈ 50k statements (check.sh smoke), Medium = 1M (the committed
    BENCH_sim.json trajectory), Large = 2M over an SF100-class graph
    (448k persons / 40M directed edges — past
    {!Graph.Csr.auto_compact_threshold}, so the packed CSR carries it). *)

type class_stats = {
  cls : string;
  count : int;
  mean : float;
  p50 : float;
  p99 : float;
  lat_max : float;
}

type report = {
  statements : int;
  events : int;
  virtual_seconds : float;
  wall_seconds : float;
  violation_count : int;
  violations : string list;  (** first few, for the console *)
  digest : int;  (** CRC32 chain over (time, client, class, SQL) *)
  outcome_digest : int;  (** CRC32 chain over outcome summaries *)
  recoveries : int;
  checkpoints : int;
  reconnects : int;
  classes : class_stats list;
  vertices : int;
  edges : int;
}

val run : config -> report
(** Build the graph, load the backend, drive the event loop, reconcile,
    tear down (temp dirs removed, sessions closed, server shut down). *)

val mutate_graph :
  Sqlgraph.Db.t -> ids:int array -> seed:int -> statements:int -> unit
(** The simulator's edge-DML burst as a standalone helper: [statements]
    seeded INSERT/DELETE statements against [friends], for regression
    tests that need a deterministically mutated graph.  Raises
    [Failure] if a statement errors. *)

val json_report : config -> report -> Sqlgraph.Metrics.json
(** sqlgraph-bench-v1 document (suite ["sim"]) — the shape committed as
    BENCH_sim.json. *)

val print_report : report -> unit
