(* The server front-end: listeners, the accept loop, and graceful
   shutdown.  All the interesting concurrency lives in Scheduler /
   Session / Group_commit; this module just wires sockets to sessions
   and sequences the drain.

   Shutdown ([shutdown], triggered by SIGTERM/SIGINT in the CLI):
     1. Scheduler.begin_stop — the stop pipe wakes every session's
        select permanently; new connections are refused.
     2. close the listeners (accept loops exit).
     3. cancel in-flight statements (cooperative, via each session's
        governor) and join every session thread.
     4. flush + fsync the WAL and checkpoint, so a restart recovers
        from the checkpoint instead of replaying the whole log.  Fault
        site "shutdown_drain" fires before the checkpoint: an injected
        crash here must still recover every acknowledged commit from
        the WAL alone — which is exactly what the fuzzer checks. *)

module Fault = Sqlgraph.Fault

type t = {
  sched : Scheduler.t;
  mu : Mutex.t;
  mutable sessions : Session.t list; (* joined (and dropped) at shutdown *)
  mutable listeners : (Unix.file_descr * Thread.t) list;
  mutable unix_path : string option; (* socket file to unlink on shutdown *)
  mutable shut : bool;
}

let create ?config ~db ~store () =
  {
    sched = Scheduler.create ?config ~db ~store ();
    mu = Mutex.create ();
    sessions = [];
    listeners = [];
    unix_path = None;
    shut = false;
  }

let scheduler t = t.sched

(* Admit one connected fd: either spawn a session or refuse on the
   socket itself.  Shared by the accept loops and [attach] (the
   socketpair harness used by tests and the bench). *)
let serve_fd t fd =
  Fault.hit ~site:"accept";
  match Scheduler.admit t.sched with
  | `Ok sid ->
    let s = Session.spawn t.sched ~sid fd in
    Mutex.lock t.mu;
    t.sessions <- s :: t.sessions;
    Mutex.unlock t.mu
  | `Full ->
    let cfg = Scheduler.config t.sched in
    let line =
      Protocol.err_busy ~retry_ms:cfg.busy_retry_ms "server at session capacity"
      ^ "\n" ^ Protocol.bye "session cap" ^ "\n"
    in
    (try ignore (Unix.write_substring fd line 0 (String.length line))
     with _ -> ());
    (try Unix.close fd with _ -> ())
  | `Stopping ->
    let line = Protocol.bye "server shutting down" ^ "\n" in
    (try ignore (Unix.write_substring fd line 0 (String.length line))
     with _ -> ());
    (try Unix.close fd with _ -> ())

let attach t fd =
  try serve_fd t fd
  with exn ->
    (try Unix.close fd with _ -> ());
    raise exn

(* Accept loop: select on the listener and the stop pipe, accept and
   hand off.  An injected "accept" fault drops that one connection —
   the server keeps serving. *)
let accept_loop t lfd =
  let stop = Scheduler.stop_fd t.sched in
  let rec go () =
    match Unix.select [ lfd; stop ] [] [] (-1.) with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
    | exception Unix.Unix_error (Unix.EBADF, _, _) -> ()
    | ready, _, _ when List.mem stop ready -> ()
    | ready, _, _ when List.mem lfd ready -> (
      match Unix.accept ~cloexec:true lfd with
      | fd, _ ->
        (try serve_fd t fd
         with Fault.Injected _ -> ( try Unix.close fd with _ -> ()));
        go ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
      | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL), _, _) -> ()
      | exception _ -> go ())
    | _ -> go ()
  in
  go ()

let add_listener t lfd =
  Unix.listen lfd 64;
  let th = Thread.create (accept_loop t) lfd in
  Mutex.lock t.mu;
  t.listeners <- (lfd, th) :: t.listeners;
  Mutex.unlock t.mu

let listen_unix t path =
  (try Unix.unlink path with _ -> ());
  let lfd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind lfd (Unix.ADDR_UNIX path);
  t.unix_path <- Some path;
  add_listener t lfd

let listen_tcp t host port =
  let addr =
    if host = "" then Unix.inet_addr_loopback else Unix.inet_addr_of_string host
  in
  let lfd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt lfd Unix.SO_REUSEADDR true;
  Unix.bind lfd (Unix.ADDR_INET (addr, port));
  add_listener t lfd

let bound_port t =
  Mutex.lock t.mu;
  let port =
    List.find_map
      (fun (lfd, _) ->
        match Unix.getsockname lfd with
        | Unix.ADDR_INET (_, p) -> Some p
        | _ -> None)
      t.listeners
  in
  Mutex.unlock t.mu;
  port

let shutdown t =
  Mutex.lock t.mu;
  let already = t.shut in
  t.shut <- true;
  Mutex.unlock t.mu;
  if not already then begin
    Scheduler.begin_stop t.sched;
    Mutex.lock t.mu;
    let listeners = t.listeners in
    t.listeners <- [];
    Mutex.unlock t.mu;
    List.iter (fun (lfd, _) -> try Unix.close lfd with _ -> ()) listeners;
    List.iter (fun (_, th) -> Thread.join th) listeners;
    (match t.unix_path with
    | Some p -> ( try Unix.unlink p with _ -> ())
    | None -> ());
    (* Drain sessions only after the accept loops are joined, and loop:
       a connection accepted just before begin_stop may be appended to
       [t.sessions] concurrently with the first snapshot, and it too
       must be cancelled and joined before we checkpoint and exit. *)
    let rec drain_sessions () =
      Mutex.lock t.mu;
      let sessions = t.sessions in
      t.sessions <- [];
      Mutex.unlock t.mu;
      if sessions <> [] then begin
        List.iter Session.cancel sessions;
        List.iter Session.join sessions;
        drain_sessions ()
      end
    in
    drain_sessions ();
    (* drain done; make everything durable.  A crash injected at
       "shutdown_drain" leaves the WAL as the only source of truth —
       recovery must still produce every acknowledged commit. *)
    match Scheduler.store t.sched with
    | None -> ()
    | Some store -> (
      (* best-effort: a crashed or poisoned store refuses these, and
         recovery from the WAL alone must then reproduce every
         acknowledged commit — exactly what the fuzzer asserts *)
      try
        Fault.hit ~site:"shutdown_drain";
        Sqlgraph.Wal.flush_now store;
        Sqlgraph.Wal.fsync_now store;
        ignore (Sqlgraph.Wal.checkpoint store (Scheduler.db t.sched))
      with _ -> ())
  end
