(** Blocking line-protocol client — shared by the CLI's [client]
    subcommand, the server benchmark and the tests. *)

type t

exception Closed of string
(** The connection died (EOF, reset) or a read timed out. *)

val of_fd : Unix.file_descr -> t
(** Wrap an already-connected fd (socketpair harnesses). The client
    takes ownership. *)

val connect_unix : string -> t
val connect_tcp : string -> int -> t
val close : t -> unit

val hello : ?timeout_ms:int -> t -> string
(** The server greeting ([HELLO sqlgraph ...]); read lazily once. *)

val read_line : ?timeout_ms:int -> t -> string

val request : ?timeout_ms:int -> t -> string -> string list
(** One round trip: send [sql], collect response lines until a terminal
    [OK]/[ERR]/[BYE] (returned last).  Reads the greeting first if it
    has not been consumed yet. *)

val send_line : t -> string -> unit

val terminal : string list -> string
(** The terminal line of a {!request} response ([""] if empty). *)

val is_ok : string list -> bool
val snapshot : string list -> int option
