(** Blocking line-protocol client — shared by the CLI's [client]
    subcommand, the server benchmark and the tests. *)

type t

exception Closed of string
(** The connection died (EOF, reset) or a read timed out. *)

val of_fd : Unix.file_descr -> t
(** Wrap an already-connected fd (socketpair harnesses). The client
    takes ownership. *)

val connect_unix : string -> t
val connect_tcp : string -> int -> t
val close : t -> unit

val hello : ?timeout_ms:int -> t -> string
(** The server greeting ([HELLO sqlgraph ...]); read lazily once. *)

val read_line : ?timeout_ms:int -> t -> string

val request : ?timeout_ms:int -> t -> string -> string list
(** One round trip: send [sql], collect response lines until a terminal
    [OK]/[ERR]/[BYE] (returned last).  Reads the greeting first if it
    has not been consumed yet. *)

val send_line : t -> string -> unit

val terminal : string list -> string
(** The terminal line of a {!request} response ([""] if empty). *)

val is_ok : string list -> bool
val snapshot : string list -> int option

(** {1 Endpoints} *)

type endpoint = Unix_ep of string | Tcp_ep of string * int

val parse_endpoint : string -> endpoint
(** ["unix:/path"] (or a bare path starting with ['/'] or ['.']) is a
    Unix-domain socket; ["host:port"] a TCP listener.  Raises
    [Invalid_argument] on anything else. *)

val endpoint_name : endpoint -> string
val connect_endpoint : endpoint -> t

(** {1 Failover pool (DESIGN.md §15)}

    One live connection rotated over an endpoint list.  {!Pool.request}
    retries with bounded exponential backoff — honouring the server's
    [ERR busy retry_ms=<n>] hint — across connection loss, admission
    busy, and the read-only refusal of a standby that has not been
    promoted yet; it raises {!Pool.Exhausted} only once the retry
    budget is spent.  The pool refuses to reuse a connection whose
    greeting reports a snapshot version below one it already observed,
    so reads stay monotone across failover. *)
module Pool : sig
  type t

  exception Exhausted of string

  val create :
    ?retries:int ->
    ?backoff_ms:int ->
    ?backoff_cap_ms:int ->
    ?timeout_ms:int ->
    endpoint list ->
    t
  (** Defaults: 10 retries, 25 ms initial backoff doubling to a 2000 ms
      cap, no read timeout. *)

  val request : t -> string -> string list
  (** Like {!Client.request}, across failover. *)

  val last_snapshot : t -> int
  (** Highest [snapshot=<v>] observed ([-1] before the first). *)

  val endpoint : t -> endpoint
  (** The endpoint the live (or next) connection targets. *)

  val close : t -> unit
end
