(* Line-protocol client: the thin blocking helper the CLI's client
   mode, the server bench and the tests all share.  One request at a
   time; [request] collects response lines until a terminal verb. *)

type t = {
  fd : Unix.file_descr;
  buf : Buffer.t;
  chunk : Bytes.t;
  mutable greeting : string option;
}

exception Closed of string

let of_fd fd = { fd; buf = Buffer.create 256; chunk = Bytes.create 4096; greeting = None }

let connect_unix path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX path)
   with e ->
     (try Unix.close fd with _ -> ());
     raise e);
  of_fd fd

let connect_tcp host port =
  let addr =
    try (Unix.gethostbyname host).Unix.h_addr_list.(0)
    with Not_found -> Unix.inet_addr_of_string host
  in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_INET (addr, port))
   with e ->
     (try Unix.close fd with _ -> ());
     raise e);
  of_fd fd

let close t = try Unix.close t.fd with _ -> ()

(* Read one line, blocking up to [timeout_ms] ([None] = forever). *)
let read_line ?timeout_ms t =
  let deadline =
    Option.map (fun ms -> Unix.gettimeofday () +. (float_of_int ms /. 1000.)) timeout_ms
  in
  let rec take () =
    match String.index_opt (Buffer.contents t.buf) '\n' with
    | Some i ->
      let all = Buffer.contents t.buf in
      let line = String.sub all 0 i in
      Buffer.clear t.buf;
      Buffer.add_substring t.buf all (i + 1) (String.length all - i - 1);
      line
    | None ->
      (match deadline with
      | Some d ->
        let left = d -. Unix.gettimeofday () in
        if left <= 0. then raise (Closed "client read timeout");
        (match Unix.select [ t.fd ] [] [] left with
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
        | [], _, _ -> raise (Closed "client read timeout")
        | _ -> ())
      | None -> ());
      (match Unix.read t.fd t.chunk 0 (Bytes.length t.chunk) with
      | 0 -> raise (Closed "server closed the connection")
      | n -> Buffer.add_subbytes t.buf t.chunk 0 n
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      take ()
  in
  take ()

let hello ?timeout_ms t =
  match t.greeting with
  | Some g -> g
  | None ->
    let g = read_line ?timeout_ms t in
    t.greeting <- Some g;
    g

let rec write_all fd s off len =
  if len > 0 then
    match Unix.write_substring fd s off len with
    | n -> write_all fd s (off + n) (len - n)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_all fd s off len

let send_line t line =
  let payload = line ^ "\n" in
  try write_all t.fd payload 0 (String.length payload)
  with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET | Unix.EBADF), _, _) ->
    raise (Closed "server closed the connection")

(* One request/response round trip: send the statement, read lines until
   a terminal OK / ERR / BYE.  Returns every line, terminal last. *)
let request ?timeout_ms t sql =
  ignore (hello ?timeout_ms t);
  send_line t sql;
  let rec collect acc =
    let line = read_line ?timeout_ms t in
    if Protocol.is_terminal line then List.rev (line :: acc)
    else collect (line :: acc)
  in
  collect []

let terminal lines =
  match List.rev lines with last :: _ -> last | [] -> ""

let is_ok lines =
  let l = terminal lines in
  String.length l >= 2 && String.sub l 0 2 = "OK"

let snapshot lines = Protocol.snapshot_of_line (terminal lines)
