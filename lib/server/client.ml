(* Line-protocol client: the thin blocking helper the CLI's client
   mode, the server bench and the tests all share.  One request at a
   time; [request] collects response lines until a terminal verb. *)

type t = {
  fd : Unix.file_descr;
  buf : Buffer.t;
  chunk : Bytes.t;
  mutable greeting : string option;
}

exception Closed of string

let of_fd fd = { fd; buf = Buffer.create 256; chunk = Bytes.create 4096; greeting = None }

let connect_unix path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX path)
   with e ->
     (try Unix.close fd with _ -> ());
     raise e);
  of_fd fd

let connect_tcp host port =
  let addr =
    try (Unix.gethostbyname host).Unix.h_addr_list.(0)
    with Not_found -> Unix.inet_addr_of_string host
  in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_INET (addr, port))
   with e ->
     (try Unix.close fd with _ -> ());
     raise e);
  of_fd fd

let close t = try Unix.close t.fd with _ -> ()

(* Read one line, blocking up to [timeout_ms] ([None] = forever). *)
let read_line ?timeout_ms t =
  let deadline =
    Option.map (fun ms -> Unix.gettimeofday () +. (float_of_int ms /. 1000.)) timeout_ms
  in
  let rec take () =
    match String.index_opt (Buffer.contents t.buf) '\n' with
    | Some i ->
      let all = Buffer.contents t.buf in
      let line = String.sub all 0 i in
      Buffer.clear t.buf;
      Buffer.add_substring t.buf all (i + 1) (String.length all - i - 1);
      line
    | None ->
      (match deadline with
      | Some d ->
        let left = d -. Unix.gettimeofday () in
        if left <= 0. then raise (Closed "client read timeout");
        (match Unix.select [ t.fd ] [] [] left with
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
        | [], _, _ -> raise (Closed "client read timeout")
        | _ -> ())
      | None -> ());
      (match Unix.read t.fd t.chunk 0 (Bytes.length t.chunk) with
      | 0 -> raise (Closed "server closed the connection")
      | n -> Buffer.add_subbytes t.buf t.chunk 0 n
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      take ()
  in
  take ()

let hello ?timeout_ms t =
  match t.greeting with
  | Some g -> g
  | None ->
    let g = read_line ?timeout_ms t in
    t.greeting <- Some g;
    g

let rec write_all fd s off len =
  if len > 0 then
    match Unix.write_substring fd s off len with
    | n -> write_all fd s (off + n) (len - n)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_all fd s off len

let send_line t line =
  let payload = line ^ "\n" in
  try write_all t.fd payload 0 (String.length payload)
  with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET | Unix.EBADF), _, _) ->
    raise (Closed "server closed the connection")

(* One request/response round trip: send the statement, read lines until
   a terminal OK / ERR / BYE.  Returns every line, terminal last. *)
let request ?timeout_ms t sql =
  ignore (hello ?timeout_ms t);
  send_line t sql;
  let rec collect acc =
    let line = read_line ?timeout_ms t in
    if Protocol.is_terminal line then List.rev (line :: acc)
    else collect (line :: acc)
  in
  collect []

let terminal lines =
  match List.rev lines with last :: _ -> last | [] -> ""

let is_ok lines =
  let l = terminal lines in
  String.length l >= 2 && String.sub l 0 2 = "OK"

let snapshot lines = Protocol.snapshot_of_line (terminal lines)

(* --- endpoints ------------------------------------------------------ *)

(* A server address: "unix:/path" (or a bare path starting with '/' or
   '.') names a Unix-domain socket, "host:port" a TCP listener. *)
type endpoint = Unix_ep of string | Tcp_ep of string * int

let parse_endpoint s =
  let s = String.trim s in
  if String.length s >= 5 && String.sub s 0 5 = "unix:" then
    Unix_ep (String.sub s 5 (String.length s - 5))
  else if String.length s > 0 && (s.[0] = '/' || s.[0] = '.') then Unix_ep s
  else
    match String.rindex_opt s ':' with
    | Some i -> (
      match int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) with
      | Some port -> Tcp_ep (String.sub s 0 i, port)
      | None -> invalid_arg ("bad endpoint (host:port expected): " ^ s))
    | None -> invalid_arg ("bad endpoint (unix:/path or host:port): " ^ s)

let endpoint_name = function
  | Unix_ep p -> "unix:" ^ p
  | Tcp_ep (h, p) -> Printf.sprintf "%s:%d" h p

let connect_endpoint = function
  | Unix_ep p -> connect_unix p
  | Tcp_ep (h, p) -> connect_tcp h p

(* --- failover pool -------------------------------------------------- *)

(* A connection pool over an endpoint list (DESIGN.md §15): one live
   connection at a time, rotated through the endpoints on failure.  A
   request retries — with bounded exponential backoff, honouring the
   server's [ERR busy retry_ms=<n>] hint — across three failure shapes:

   - connection loss (refused, reset, BYE): rotate to the next endpoint;
   - admission-control busy: sleep max(hint, current backoff) and retry
     the same endpoint;
   - read-only refusal: the endpoint is a standby that has not been
     promoted yet — the failover grace window.  Rotate and retry.

   Snapshot monotonicity across failover: the pool records the highest
   [snapshot=<v>] it has observed; after a reconnect it refuses to use a
   connection whose HELLO reports an older version (the standby's
   publish floor catches up from the stream, so this resolves within a
   retry or two) — a client of the pool never reads a snapshot older
   than one it has already seen. *)
module Pool = struct
  type conn = t

  let conn_close : conn -> unit = close

  type t = {
    endpoints : endpoint array;
    retries : int; (* attempts per request beyond the first *)
    backoff_ms : int; (* initial backoff *)
    backoff_cap_ms : int;
    timeout_ms : int option; (* per-read timeout on live connections *)
    mutable cursor : int; (* endpoint of the live (or next) connection *)
    mutable conn : conn option;
    mutable last_snapshot : int; (* highest snapshot=<v> observed *)
  }

  exception Exhausted of string

  let create ?(retries = 10) ?(backoff_ms = 25) ?(backoff_cap_ms = 2000)
      ?timeout_ms endpoints =
    if endpoints = [] then invalid_arg "Pool.create: no endpoints";
    {
      endpoints = Array.of_list endpoints;
      retries;
      backoff_ms;
      backoff_cap_ms;
      timeout_ms;
      cursor = 0;
      conn = None;
      last_snapshot = -1;
    }

  let last_snapshot t = t.last_snapshot
  let endpoint t = t.endpoints.(t.cursor mod Array.length t.endpoints)

  let drop t =
    (match t.conn with Some c -> conn_close c | None -> ());
    t.conn <- None

  let rotate t =
    drop t;
    t.cursor <- (t.cursor + 1) mod Array.length t.endpoints

  let close t = drop t

  (* Connect (if needed) and validate the greeting: a HELLO whose
     snapshot is below one we already observed names a standby that has
     not caught up — treat it like a failed connect. *)
  let ensure_conn t =
    match t.conn with
    | Some c -> c
    | None ->
      let c = connect_endpoint (endpoint t) in
      let g = hello ?timeout_ms:t.timeout_ms c in
      (match Protocol.snapshot_of_line g with
      | Some v when v < t.last_snapshot ->
        conn_close c;
        raise (Closed "stale snapshot (standby catching up)")
      | Some v -> t.last_snapshot <- max t.last_snapshot v
      | None ->
        conn_close c;
        raise (Closed "bad greeting"))
      ;
      t.conn <- Some c;
      c

  (* The read-only refusal a not-yet-promoted standby sends for DML. *)
  let is_readonly_err line =
    let has_sub s sub =
      let n = String.length s and m = String.length sub in
      let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
      go 0
    in
    String.length line >= 4
    && String.sub line 0 4 = "ERR "
    (* the session-level refusal, not any error that merely mentions
       read-only-ness (e.g. "sqlgraph_* tables are read-only") *)
    && has_sub line "read-only session"

  let request t sql =
    let backoff = ref t.backoff_ms in
    let last_err = ref "" in
    let sleep_backoff ?hint () =
      let ms = max !backoff (Option.value hint ~default:0) in
      Unix.sleepf (float_of_int ms /. 1000.);
      backoff := min (ms * 2) t.backoff_cap_ms
    in
    let rec go attempt =
      if attempt > t.retries then
        raise
          (Exhausted
             (Printf.sprintf "request failed after %d attempts: %s"
                (t.retries + 1) !last_err))
      else
        match
          let c = ensure_conn t in
          request ?timeout_ms:t.timeout_ms c sql
        with
        | exception Closed msg ->
          last_err := msg;
          rotate t;
          sleep_backoff ();
          go (attempt + 1)
        | exception Unix.Unix_error (e, _, _) ->
          last_err := Unix.error_message e;
          rotate t;
          sleep_backoff ();
          go (attempt + 1)
        | lines -> (
          let term = terminal lines in
          match Protocol.retry_ms_of_line term with
          | Some hint ->
            last_err := term;
            sleep_backoff ~hint ();
            go (attempt + 1)
          | None ->
            if is_readonly_err term then begin
              (* standby in the failover grace window: rotate and retry *)
              last_err := term;
              rotate t;
              sleep_backoff ();
              go (attempt + 1)
            end
            else if
              String.length term >= 3 && String.sub term 0 3 = "BYE"
            then begin
              last_err := term;
              rotate t;
              sleep_backoff ();
              go (attempt + 1)
            end
            else begin
              (match Protocol.snapshot_of_line term with
              | Some v when v > t.last_snapshot -> t.last_snapshot <- v
              | _ -> ());
              lines
            end)
    in
    go 0
end
