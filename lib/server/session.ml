(* One connected client: a systhread running a read-execute-respond
   loop over a newline-framed socket.

   Statement routing (the snapshot-isolation half of DESIGN.md §12):

   - SELECT / EXPLAIN outside a transaction run on the session's
     *private* Db, refreshed from the scheduler's published snapshot
     just before execution — they never take the writer lock, so reads
     overlap writes and each other freely.  The snapshot version they
     ran against is reported on the OK line ([snapshot=<v>]) and is
     monotone per session by construction (the fuzzer asserts it).

   - DML/DDL and BEGIN acquire the scheduler's writer lock (or are
     load-shed with [ERR busy]).  Autocommit writes hold it for one
     statement: apply on the shared Db, publish the new snapshot,
     capture the WAL's logical end, release, then block in group commit
     until a shared fsync covers the capture — only then is OK sent.
     BEGIN keeps the lock until COMMIT/ROLLBACK, so a transaction's
     reads run on the shared Db (read-your-writes; nobody else can
     advance it while we hold the lock) and its buffered writes become
     durable — and published — at COMMIT, atomically.

   - SET applies to the private Db only: parallelism and limits are
     per-session knobs.

   Failure shapes: a failed statement keeps the session alive (ERR
   response); a failed group fsync reports ERR on a statement that did
   apply in memory — the safe direction, since an un-acknowledged
   commit is allowed (but not required) to survive recovery.  Framing
   violations get [ERR protocol] and the reader resynchronizes at the
   next newline.  Idle timeout, EOF, injected "session_read" faults and
   server shutdown all end the session with a best-effort BYE. *)

module Db = Sqlgraph.Db
module Governor = Sqlgraph.Governor
module Fault = Sqlgraph.Fault

type t = {
  sched : Scheduler.t;
  sid : int;
  fd : Unix.file_descr;
  session_db : Db.t; (* private snapshot replica (reads) *)
  seen : (string, int) Hashtbl.t; (* table versions loaded into session_db *)
  mutable last_version : int; (* latest snapshot version observed (reported) *)
  mutable loaded_version : int; (* snapshot version session_db actually holds *)
  mutable holding_writer : bool; (* BEGIN..COMMIT keeps the writer lock *)
  mutable stmt_seq : int;
      (* statements executed by this session, across both the private
         and the shared Db — the :<seq> of its query ids, monotone per
         session by construction *)
  mutable last_qid : string option; (* latest query id (wire + stat_sessions) *)
  gov_mu : Mutex.t;
  mutable current_gov : Governor.t option; (* in-flight statement's governor *)
  mutable thread : Thread.t option;
}

(* [cancel] is called from the server's shutdown thread: cooperatively
   abort whatever statement is running so drain cannot block on an
   unbounded traversal. *)
let cancel t =
  Mutex.lock t.gov_mu;
  (match t.current_gov with Some g -> Governor.cancel g | None -> ());
  Mutex.unlock t.gov_mu

(* --- socket I/O ---------------------------------------------------- *)

let rec write_all fd s off len =
  if len > 0 then
    match Unix.write_substring fd s off len with
    | n -> write_all fd s (off + n) (len - n)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_all fd s off len

exception Peer_gone

let send t lines =
  let payload = String.concat "" (List.map (fun l -> l ^ "\n") lines) in
  try write_all t.fd payload 0 (String.length payload)
  with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET | Unix.EBADF), _, _) ->
    raise Peer_gone

(* Buffered newline framing over select([fd; stop_fd]).  The reader owns
   the idle timeout, the frame-size cap and the resync-after-oversize
   behaviour; faults at site "session_read" model a connection dying
   mid-read. *)
type read_event = Line of string | Eof | Idle | Stop | Oversized | Died of exn

let rec take_line buf discarding =
  match String.index_opt (Buffer.contents buf) '\n' with
  | Some i ->
    let all = Buffer.contents buf in
    let line = String.sub all 0 i in
    Buffer.clear buf;
    Buffer.add_substring buf all (i + 1) (String.length all - i - 1);
    if !discarding then begin
      (* the tail of an oversized request: swallow it and resume *)
      discarding := false;
      take_line buf discarding
    end
    else Some (if line <> "" && line.[String.length line - 1] = '\r' then
                 String.sub line 0 (String.length line - 1)
               else line)
  | None ->
    if !discarding then Buffer.clear buf;
    None

let read_event t buf chunk discarding =
  let cfg = Scheduler.config t.sched in
  let stop = Scheduler.stop_fd t.sched in
  let rec go () =
    match take_line buf discarding with
    | Some line ->
      (* a complete line can still breach the frame cap *)
      if String.length line > cfg.max_line_bytes then Oversized else Line line
    | None ->
      if Buffer.length buf > cfg.max_line_bytes then begin
        Buffer.clear buf;
        discarding := true;
        Oversized
      end
      else begin
        (* Idle accounting goes through the scheduler's clock.  [Wall]
           is the production path: one select covers the whole budget.
           [Manual] (tests) keeps the deadline on the virtual clock and
           degrades select to short real ticks, so a test fires the
           timeout by advancing virtual time — no real-time sleeps. *)
        let timeout = float_of_int cfg.idle_timeout_ms /. 1000. in
        let deadline, tick =
          match cfg.clock with
          | Scheduler.Wall -> (0., timeout)
          | Scheduler.Manual now -> (now () +. timeout, 0.002)
        in
        let rec wait () =
          match Unix.select [ t.fd; stop ] [] [] tick with
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait ()
          | [], _, _ -> (
            match cfg.clock with
            | Scheduler.Wall -> Idle
            | Scheduler.Manual now ->
              if now () >= deadline then Idle else wait ())
          | ready, _, _ when List.mem stop ready -> Stop
          | _ -> (
            match
              Fault.hit ~site:"session_read";
              Unix.read t.fd chunk 0 (Bytes.length chunk)
            with
            | 0 -> Eof
            | n ->
              Buffer.add_subbytes buf chunk 0 n;
              go ()
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait ()
            | exception exn -> Died exn)
        in
        wait ()
      end
  in
  go ()

(* --- statement execution ------------------------------------------- *)

(* Local copy of Db's classifier: which statements need the writer lock. *)
let is_write = function
  | Sql.Ast.Insert _ | Sql.Ast.Update _ | Sql.Ast.Delete _
  | Sql.Ast.Create_table _ | Sql.Ast.Create_table_as _ | Sql.Ast.Drop_table _
    ->
    true
  | _ -> false

let exec_with_gov t db sql =
  let gov = Governor.start (Scheduler.config t.sched).budget in
  Mutex.lock t.gov_mu;
  t.current_gov <- Some gov;
  Mutex.unlock t.gov_mu;
  let r = Db.exec db ~governor:gov sql in
  Mutex.lock t.gov_mu;
  t.current_gov <- None;
  Mutex.unlock t.gov_mu;
  (* Query id: the statement's fingerprint (just stamped on [db] by
     Db.exec) plus this session's own sequence number.  The session
     allocates the sequence — statements interleave across the private
     and shared Db, so neither Db's counter is session-monotone.  Safe
     to read off the shared Db: we hold the writer lock whenever a
     statement runs there. *)
  t.stmt_seq <- t.stmt_seq + 1;
  let qid =
    Option.map
      (fun fp -> Printf.sprintf "%s:%d" fp t.stmt_seq)
      (Db.last_fingerprint db)
  in
  (match qid with Some _ -> t.last_qid <- qid | None -> ());
  (r, qid)

let render t ?qid r =
  match r with
  | Ok o -> Protocol.ok_outcome ?qid ~snapshot:t.last_version o
  | Error e -> [ Protocol.err e ]

(* Run one statement that holds (or already held) the writer lock, then
   publish, capture the durability target and release.  The returned
   target is the WAL position the acknowledgement must wait for — the
   caller batches those waits across pipelined requests, so it is NOT
   awaited here. *)
let exec_write_prepare t ~release sql =
  let shared = Scheduler.db t.sched in
  let r, qid = exec_with_gov t shared sql in
  (* publish even after a failed statement: the shared Db's state —
     whatever it is — is what the next snapshot must show *)
  Scheduler.publish t.sched;
  let target = Scheduler.log_target t.sched in
  t.last_version <- Scheduler.snapshot_version t.sched;
  if release then Scheduler.writer_release t.sched;
  match r with
  | Error _ -> (render t r, None)
  | Ok o -> (Protocol.ok_outcome ?qid ~snapshot:t.last_version o, Some target)

(* [last_version] can run ahead of [loaded_version]: a write observes
   the new snapshot immediately (it made it), but the private replica
   only catches up here, on the next read. *)
let refresh t =
  let v =
    Scheduler.refresh_snapshot t.sched ~session_db:t.session_db ~seen:t.seen
      ~last_version:t.loaded_version
  in
  t.loaded_version <- v;
  if v > t.last_version then t.last_version <- v

(* A batch context: consecutive autocommit writes in one burst share
   the writer lock and a single publish (the snapshot copy is O(table
   size), so per-statement publication is the dominant cost of a write
   burst).  [wlock] is true while the batch holds the writer lock for
   such a run of writes; any statement that needs the published
   snapshot — or the lock — flushes first. *)
type batch = {
  mutable wlock : bool;
  mutable vrefs : int ref list; (* deferred writes awaiting their version *)
  mutable dur_target : int; (* highest lock-held WAL capture of this batch *)
}

(* End a run of batched autocommit writes: publish once, stamp each
   deferred write with the snapshot version that publish produced,
   capture the durability target, drop the lock.  The capture must
   happen *before* the release: once the lock is free another session's
   failing statement can append WAL bytes and truncate them again
   (dur_abort), so an unlocked read of the log end may name a position
   the log never reaches again — and a wait on it would never return.
   A lock-held capture can only cover our own (and earlier) appends,
   which no later abort is allowed to truncate. *)
let batch_flush t b =
  if b.wlock then begin
    b.wlock <- false;
    Scheduler.publish t.sched;
    t.last_version <- Scheduler.snapshot_version t.sched;
    List.iter (fun r -> r := t.last_version) b.vrefs;
    b.vrefs <- [];
    b.dur_target <- max b.dur_target (Scheduler.log_target t.sched);
    Scheduler.writer_release t.sched
  end

(* One request's contribution to the batch response.  [Deferred]
   carries an un-rendered write outcome: its snapshot version (the ref,
   filled in by {!batch_flush}) is only known once its run of writes
   publishes, and its OK must wait for the shared durability target. *)
type item =
  | Immediate of string list
  | Gated of string list * int
      (* rendered, but ack'd only after an fsync covers the target *)
  | Deferred of Db.exec_outcome * int ref * string option
      (* outcome, snapshot-version ref, query id: rendered late *)

(* Execute one request inside a batch. *)
let execute t b sql =
  match Db.protect (fun () -> Sql.Parser.parse_stmt sql) with
  | Error e ->
    batch_flush t b;
    Immediate [ Protocol.err e ]
  | Ok stmt -> (
    match stmt with
    | Sql.Ast.Set_option _ ->
      (* session-local knobs (parallelism, limits) live on the private Db *)
      batch_flush t b;
      let r, qid = exec_with_gov t t.session_db sql in
      Immediate (render t ?qid r)
    | Sql.Ast.Select _ | Sql.Ast.Explain _ ->
      if t.holding_writer then begin
        (* in-transaction read: read-your-writes on the shared Db (safe —
           we hold the writer lock, nothing else can touch it) *)
        let r, qid = exec_with_gov t (Scheduler.db t.sched) sql in
        Immediate (render t ?qid r)
      end
      else begin
        (* publish any batched writes first: read-your-writes *)
        batch_flush t b;
        refresh t;
        let r, qid = exec_with_gov t t.session_db sql in
        Immediate (render t ?qid r)
      end
    | Sql.Ast.Begin_txn -> (
      if t.holding_writer then begin
        (* nested BEGIN: let the shared Db produce its usual error *)
        let r, qid = exec_with_gov t (Scheduler.db t.sched) sql in
        Immediate (render t ?qid r)
      end
      else begin
        batch_flush t b;
        match Scheduler.writer_acquire t.sched with
        | `Busy retry_ms ->
          Immediate [ Protocol.err_busy ~retry_ms "write queue full" ]
        | `Ok -> (
          match exec_with_gov t (Scheduler.db t.sched) sql with
          | (Ok _ as r), qid ->
            t.holding_writer <- true;
            Immediate (render t ?qid r)
          | (Error _ as r), qid ->
            Scheduler.writer_release t.sched;
            Immediate (render t ?qid r))
      end)
    | Sql.Ast.Commit_txn | Sql.Ast.Rollback_txn ->
      if not t.holding_writer then begin
        (* no open transaction: the private Db raises the usual error *)
        batch_flush t b;
        let r, qid = exec_with_gov t t.session_db sql in
        Immediate (render t ?qid r)
      end
      else begin
        t.holding_writer <- false;
        match (exec_write_prepare t ~release:true sql, stmt) with
        (* ROLLBACK appends nothing (the WAL buffer is dropped), so its
           OK needs no fsync — gating it would delay the ack behind
           other sessions' unrelated bytes *)
        | (resp, _), Sql.Ast.Rollback_txn -> Immediate resp
        | (resp, Some target), _ -> Gated (resp, target)
        | (resp, None), _ -> Immediate resp
      end
    | _ when is_write stmt ->
      if t.holding_writer then begin
        (* inside BEGIN: apply + buffer; durability (and publication)
           happen at COMMIT, atomically with the rest of the txn *)
        let r, qid = exec_with_gov t (Scheduler.db t.sched) sql in
        Immediate (render t ?qid r)
      end
      else if b.wlock then (
        (* already mid-run: keep the lock, defer the publish *)
        match exec_with_gov t (Scheduler.db t.sched) sql with
        | Ok o, qid ->
          let v = ref t.last_version in
          b.vrefs <- v :: b.vrefs;
          Deferred (o, v, qid)
        | (Error _ as r), qid ->
          (* errors carry no snapshot: render now, but keep batching *)
          Immediate (render t ?qid r))
      else (
        match Scheduler.writer_acquire t.sched with
        | `Busy retry_ms ->
          Immediate [ Protocol.err_busy ~retry_ms "write queue full" ]
        | `Ok -> (
          b.wlock <- true;
          match exec_with_gov t (Scheduler.db t.sched) sql with
          | Ok o, qid ->
            let v = ref t.last_version in
            b.vrefs <- v :: b.vrefs;
            Deferred (o, v, qid)
          | (Error _ as r), qid -> Immediate (render t ?qid r)))
    | _ ->
      batch_flush t b;
      let r, qid = exec_with_gov t t.session_db sql in
      Immediate (render t ?qid r))

(* Execute every request of [batch] in order, then acknowledge them all
   at once: the durability waits collapse into one group-commit wait on
   the highest WAL target, and the responses go out in a single socket
   write.  A pipelining client thus pays one fsync-wait and one write
   per burst; a synchronous client (one request in flight) sees exactly
   per-statement behaviour.  If the shared wait fails, every write in
   the batch is reported as an error — the safe direction, since an
   unacknowledged commit may (but need not) survive recovery. *)
let run_batch t batch =
  let cfg = Scheduler.config t.sched in
  let quit = ref false in
  let b = { wlock = false; vrefs = []; dur_target = 0 } in
  let items =
    Fun.protect
      ~finally:(fun () -> batch_flush t b) (* never leak the writer lock *)
      (fun () ->
        List.filter_map
          (fun line ->
            if !quit then None (* requests after QUIT are dead *)
            else if String.length line > cfg.max_line_bytes then
              Some
                (Immediate
                   [
                     Protocol.err_protocol
                       (Printf.sprintf "request exceeds %d bytes"
                          cfg.max_line_bytes);
                   ])
            else
              let sql = Protocol.clean_request line in
              if sql = "" then
                Some (Immediate [ Protocol.err_protocol "empty request" ])
              else if String.uppercase_ascii sql = "QUIT" then begin
                quit := true;
                None
              end
              else if String.uppercase_ascii sql = "PROMOTE" then
                (* standby promotion (DESIGN.md §15): fence the old
                   generation and start accepting writes.  Only
                   meaningful on a server whose Replication.Replica
                   installed the hook. *)
                Some
                  (Immediate
                     (match Scheduler.promote_hook t.sched with
                     | None ->
                       [ Protocol.err_protocol "not a replica: nothing to promote" ]
                     | Some f -> (
                       match f () with
                       | Ok gen ->
                         t.last_version <- Scheduler.snapshot_version t.sched;
                         [
                           Printf.sprintf "OK PROMOTE gen=%d snapshot=%d" gen
                             t.last_version;
                         ]
                       | Error msg -> [ Protocol.err_protocol msg ])))
              else begin
                let t0 = Unix.gettimeofday () in
                let item = execute t b sql in
                Scheduler.metric_observe t.sched
                  "sqlgraph_server_statement_seconds"
                  (Unix.gettimeofday () -. t0)
                  ~help:"Served statement latency";
                Scheduler.session_note t.sched ~sid:t.sid ~qid:t.last_qid
                  ~snapshot:t.last_version ~in_txn:t.holding_writer;
                Some item
              end)
          batch)
  in
  let acked =
    List.exists (function Gated _ | Deferred _ -> true | _ -> false) items
  in
  let durable =
    if not acked then Ok ()
    else
      (* one wait covers the whole batch: every target was captured
         under the writer lock (batch_flush for Deferred runs,
         exec_write_prepare for Gated commits), so each names a log
         position a later abort's truncation cannot remove — waiting on
         their max terminates.  Re-reading the log end here, unlocked,
         could observe another session's soon-to-be-truncated bytes and
         wait for a position the log never reaches again. *)
      let target =
        List.fold_left
          (fun acc -> function Gated (_, tgt) -> max acc tgt | _ -> acc)
          b.dur_target items
      in
      Db.protect (fun () -> Scheduler.wait_durable t.sched target)
  in
  let out =
    List.concat_map
      (fun item ->
        match (item, durable) with
        | Immediate resp, _ -> resp
        | (Gated _ | Deferred _), Error e -> [ Protocol.err e ]
        | Gated (resp, _), Ok () -> resp
        | Deferred (o, v, qid), Ok () ->
          Protocol.ok_outcome ?qid ~snapshot:!v o)
      items
  in
  if out <> [] then send t out;
  if !quit then `Quit else `Continue

(* --- session lifecycle --------------------------------------------- *)

let cleanup t =
  if t.holding_writer then begin
    (* connection died mid-transaction: roll back so the writer Db (and
       the WAL buffer, via dur_rollback) drop the uncommitted work *)
    t.holding_writer <- false;
    (try ignore (Db.exec (Scheduler.db t.sched) "ROLLBACK") with _ -> ());
    Scheduler.publish t.sched;
    Scheduler.writer_release t.sched
  end;
  (try Unix.close t.fd with _ -> ());
  Telemetry.Trace.unregister_thread_track ();
  Scheduler.leave t.sched ~sid:t.sid

let bye_close t reason =
  (try send t [ Protocol.bye reason ] with Peer_gone -> ());
  cleanup t

let run t =
  Telemetry.Trace.register_thread_track t.sid;
  let cfg = Scheduler.config t.sched in
  let buf = Buffer.create 256 in
  let chunk = Bytes.create 4096 in
  let discarding = ref false in
  (try
     refresh t;
     send t [ Protocol.hello ~sid:t.sid ~snapshot:t.last_version ];
     let rec loop () =
       match read_event t buf chunk discarding with
       | Stop -> bye_close t "server shutting down"
       | Eof -> cleanup t
       | Idle ->
         Scheduler.metric_inc t.sched "sqlgraph_server_idle_timeouts_total" 1
           ~help:"Sessions closed by the idle timeout";
         (try
            send t
              [
                Protocol.err
                  (Sqlgraph.Error.Resource_error
                     {
                       kind = Sqlgraph.Error.Timeout;
                       spent = float_of_int cfg.idle_timeout_ms;
                       limit = float_of_int cfg.idle_timeout_ms;
                       site = "session_idle";
                     });
              ]
          with Peer_gone -> ());
         bye_close t "idle timeout"
       | Died _ -> bye_close t "read failed"
       | Oversized ->
         send t
           [
             Protocol.err_protocol
               (Printf.sprintf "request exceeds %d bytes" cfg.max_line_bytes);
           ];
         loop ()
       | Line first when Protocol.parse_replica_handshake first <> None -> (
         (* A standby announcing itself (DESIGN.md §15): hand the socket
            to the replication hub and leave the session slot — the fd
            now belongs to the hub, so skip the usual close. *)
         let gen, offset =
           Option.get (Protocol.parse_replica_handshake first)
         in
         match Scheduler.repl_attach t.sched with
         | None ->
           send t [ Protocol.err_protocol "replication not enabled" ];
           loop ()
         | Some attach ->
           Telemetry.Trace.unregister_thread_track ();
           Scheduler.leave t.sched ~sid:t.sid;
           attach t.fd ~gen ~offset)
       | Line first ->
         (* drain every complete request already buffered: they form one
            batch with a single shared durability wait and one response
            write (run_batch) *)
         let rest = ref [] in
         let rec drain () =
           match take_line buf discarding with
           | Some l ->
             rest := l :: !rest;
             drain ()
           | None -> ()
         in
         drain ();
         (match run_batch t (first :: List.rev !rest) with
         | `Quit -> bye_close t "client quit"
         | `Continue -> loop ())
     in
     loop ()
   with
  | Peer_gone -> cleanup t
  | exn ->
    (* defensive: no exception may leak out of a session thread *)
    (try send t [ Protocol.bye ("internal error: " ^ Printexc.to_string exn) ]
     with _ -> ());
    cleanup t)

let spawn sched ~sid fd =
  (* The private Db shares the server's graph-index cache: a graph built
     by any session — or warmed by a standby's apply loop — is a cache
     hit for every other session's path queries (version mirroring in
     Scheduler.refresh_snapshot keeps the keys coherent). *)
  let shared = Scheduler.db sched in
  let session_db = Db.create ~indices:(Db.indices shared) () in
  (* Introspection wiring (DESIGN.md §14): reads run on the private Db,
     so its system tables must show *server* state, not the replica's
     defaults.  The fingerprint store is shared outright — every
     session's statements land in one sqlgraph_stat_statements view —
     and the session-scoped providers delegate to the scheduler (or the
     shared Db, for the WAL table, which is registered there by
     recovery). *)
  Db.set_stat_store session_db (Db.stat_store shared);
  (match
     Storage.Catalog.virtual_provider (Db.catalog shared) "sqlgraph_stat_wal"
   with
  | Some p -> Db.register_virtual_table session_db ~name:"sqlgraph_stat_wal" p
  | None -> ());
  (match
     Storage.Catalog.virtual_provider (Db.catalog shared)
       "sqlgraph_stat_replication"
   with
  | Some p ->
    Db.register_virtual_table session_db ~name:"sqlgraph_stat_replication" p
  | None -> ());
  Db.register_virtual_table session_db ~name:"sqlgraph_stat_sessions"
    (fun () -> Scheduler.sessions_table sched);
  Db.register_virtual_table session_db ~name:"sqlgraph_metrics" (fun () ->
      Scheduler.metrics_table sched
        ~extra:[ Db.registry session_db; Db.registry shared ]);
  let t =
    {
      sched;
      sid;
      fd;
      session_db;
      seen = Hashtbl.create 16;
      last_version = -1;
      loaded_version = -1;
      holding_writer = false;
      stmt_seq = 0;
      last_qid = None;
      gov_mu = Mutex.create ();
      current_gov = None;
      thread = None;
    }
  in
  t.thread <- Some (Thread.create run t);
  t

let join t = match t.thread with Some th -> Thread.join th | None -> ()
