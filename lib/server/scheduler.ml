(* Shared state of the multi-session server.

   Concurrency model (DESIGN.md §12): one domain, one systhread per
   session.  The OCaml runtime lock serializes compute, but every
   blocking operation — socket reads, fsync, condition waits — releases
   it, so reader statements overlap writer I/O and each other's waits.

   - Writers serialize through [writer]: a session takes the lock for
     the whole apply of a DML/DDL statement (and from BEGIN through
     COMMIT/ROLLBACK), so the shared Db only ever sees one mutator and
     the WAL order equals the apply order — the serial order the
     fuzzer's oracle checks prefix-consistency against.

   - Readers never take the writer lock.  After each committed write the
     writer *publishes* a snapshot: for every table whose catalog
     version moved since the last publication, an immutable Table.copy
     goes into [published] and [published_version] bumps.  A reader
     session refreshes its private Db from that map (structurally
     sharing unchanged tables) and runs statements against it — path
     queries never block behind DML, and each session's observed
     snapshot version is monotone by construction.

   - Admission control: [admit] refuses sessions beyond the cap;
     [writer_acquire] load-sheds writes when the queue behind the writer
     lock exceeds the high-water mark (reject-with-retry-hint rather
     than queueing unboundedly).

   The metrics registry is shared by concurrent session threads, so
   every update goes through [metric_*] under its own mutex — Registry
   itself is documented single-writer. *)

module Reg = Telemetry.Registry

(* Idle-deadline time source: [Wall] keeps the production single-select
   behaviour; [Manual] lets tests drive the timeout on a virtual clock
   (the session reader then polls in short ticks). *)
type clock = Wall | Manual of (unit -> float)

type config = {
  max_sessions : int;
      (* clamped to {!max_selectable_sessions} at [create]: session
         reads multiplex with Unix.select, which fails (or corrupts its
         fd_set) for descriptors >= FD_SETSIZE (1024) *)
  idle_timeout_ms : int; (* per-read timeout; a session idling longer is closed *)
  max_line_bytes : int; (* request frame cap *)
  write_high_water : int; (* load-shed when this many writers are queued *)
  busy_retry_ms : int; (* retry hint sent with busy rejections *)
  budget : Sqlgraph.Governor.budget; (* per-statement resource budget *)
  clock : clock; (* idle-deadline time source; Wall outside tests *)
}

let default_config =
  {
    max_sessions = 32;
    idle_timeout_ms = 30_000;
    max_line_bytes = 1 lsl 20;
    write_high_water = 16;
    busy_retry_ms = 50;
    budget = Sqlgraph.Governor.no_limits;
    clock = Wall;
  }

type t = {
  config : config;
  db : Sqlgraph.Db.t; (* the writer database (durable when [store] is set) *)
  store : Sqlgraph.Wal.t option;
  gc : Group_commit.t option;
  writer : Mutex.t;
  mu : Mutex.t; (* guards the mutable fields below *)
  mutable writers_waiting : int;
  mutable published_version : int;
  published : (string, Storage.Table.t * int) Hashtbl.t;
      (* name -> (immutable copy, catalog version it captures) *)
  mutable sessions : int;
  mutable next_sid : int;
  mutable stopping : bool;
  stop_r : Unix.file_descr; (* self-pipe read end: selectable stop signal *)
  mutable stop_w : Unix.file_descr option;
  metrics : Reg.t;
  metrics_mu : Mutex.t;
  session_infos : (int, session_info) Hashtbl.t;
      (* sid -> live stats; guarded by [mu]; backs sqlgraph_stat_sessions *)
  mutable repl_attach : (Unix.file_descr -> gen:int -> offset:int -> unit) option;
      (* installed by the replication hub (primary role): a session that
         reads a REPLICA handshake hands its fd over and exits without
         closing it *)
  mutable promote_hook : (unit -> (int, string) result) option;
      (* installed on a standby: the PROMOTE verb fences the old
         generation and returns the new one *)
}

(* One connected session's introspection row (sqlgraph_stat_sessions).
   Mutable fields are updated by the owning session thread via
   {!session_note} under [mu]; readers materialize the table under the
   same lock. *)
and session_info = {
  si_sid : int;
  mutable si_statements : int;
  mutable si_last_qid : string option;
  mutable si_snapshot : int;
  mutable si_in_txn : bool;
  si_connected : float; (* Unix time of admission *)
}

let metric_inc t ?help name n =
  Mutex.lock t.metrics_mu;
  Reg.inc t.metrics ?help name n;
  Mutex.unlock t.metrics_mu

let metric_gauge t ?help name v =
  Mutex.lock t.metrics_mu;
  Reg.set_gauge t.metrics ?help name v;
  Mutex.unlock t.metrics_mu

let metric_observe t ?help name v =
  Mutex.lock t.metrics_mu;
  Reg.observe t.metrics ?help name v;
  Mutex.unlock t.metrics_mu

let metrics t = t.metrics

(* Server-wide sqlgraph_metrics rows: the server registry plus any
   [extra] registries (the shared Db's, or a session's private one) —
   best-effort live read under the metrics mutex. *)
let metrics_table ?(extra = []) t =
  Mutex.lock t.metrics_mu;
  let tbl = Sqlgraph.Metrics.registry_table (extra @ [ t.metrics ]) in
  Mutex.unlock t.metrics_mu;
  tbl

(* --- per-session introspection ------------------------------------- *)

(* Record the outcome of one served statement against the session's
   sqlgraph_stat_sessions row. *)
let session_note t ~sid ~qid ~snapshot ~in_txn =
  Mutex.lock t.mu;
  (match Hashtbl.find_opt t.session_infos sid with
  | Some si ->
    si.si_statements <- si.si_statements + 1;
    (match qid with Some _ -> si.si_last_qid <- qid | None -> ());
    si.si_snapshot <- snapshot;
    si.si_in_txn <- in_txn
  | None -> ());
  Mutex.unlock t.mu

let sessions_table t =
  let module V = Storage.Value in
  let now = Unix.gettimeofday () in
  Mutex.lock t.mu;
  let infos = Hashtbl.fold (fun _ si acc -> si :: acc) t.session_infos [] in
  let rows =
    infos
    |> List.sort (fun a b -> compare a.si_sid b.si_sid)
    |> List.map (fun si ->
           [
             V.Int si.si_sid;
             V.Int si.si_statements;
             (match si.si_last_qid with Some q -> V.Str q | None -> V.Null);
             V.Int si.si_snapshot;
             V.Bool si.si_in_txn;
             V.Float (now -. si.si_connected);
           ])
  in
  Mutex.unlock t.mu;
  Storage.Table.of_rows Sqlgraph.Db.stat_sessions_schema rows

(* Publish the current catalog as an immutable snapshot: copy only the
   tables whose version moved.  Runs with the writer lock held (the
   only mutator), takes [mu] just to swap entries so readers mid-refresh
   never see a half-published vector. *)
let publish_locked t =
  let cat = Sqlgraph.Db.catalog t.db in
  let names = Storage.Catalog.names cat in
  let changed = ref [] in
  List.iter
    (fun name ->
      match (Storage.Catalog.version cat name, Storage.Catalog.find cat name) with
      | Some v, Some tbl -> (
        match Hashtbl.find_opt t.published name with
        | Some (_, pv) when pv = v -> ()
        | _ -> changed := (name, Storage.Table.copy tbl, v) :: !changed)
      | _ -> ())
    names;
  let dropped =
    Hashtbl.fold
      (fun name _ acc -> if List.mem name names then acc else name :: acc)
      t.published []
  in
  if !changed <> [] || dropped <> [] then begin
    Mutex.lock t.mu;
    List.iter (fun (name, tbl, v) -> Hashtbl.replace t.published name (tbl, v)) !changed;
    List.iter (Hashtbl.remove t.published) dropped;
    t.published_version <- t.published_version + 1;
    Mutex.unlock t.mu
  end

(* Raise the published snapshot version to at least [v] without touching
   the table map.  The replica's apply loop calls this with the snapshot
   version that rode the stream ([snap=] on REPL WAL / REPL PING), so a
   client that failed over observes a version at or above everything it
   saw on the old primary — snapshot monotonicity across promotion. *)
let set_publish_floor t v =
  Mutex.lock t.mu;
  if v > t.published_version then t.published_version <- v;
  Mutex.unlock t.mu

(* Session I/O goes through Unix.select, whose fd_set breaks for
   descriptors >= FD_SETSIZE (1024).  Keep the session cap comfortably
   below that so session fds — which sit above the listeners, the stop
   pipe, the WAL fd and whatever the embedder holds open — stay
   selectable even at full occupancy. *)
let max_selectable_sessions = 900

let create ?(config = default_config) ~db ~store () =
  let config =
    if config.max_sessions > max_selectable_sessions then
      { config with max_sessions = max_selectable_sessions }
    else config
  in
  let stop_r, stop_w = Unix.pipe ~cloexec:true () in
  let metrics = Reg.create () in
  let metrics_mu = Mutex.create () in
  let writer = Mutex.create () in
  let gc =
    Option.map
      (fun s ->
        Group_commit.create ~writer ~store:s ~observe_group:(fun n ->
            Mutex.lock metrics_mu;
            Reg.observe metrics "sqlgraph_server_group_commit_size"
              (float_of_int n)
              ~help:"Commits acknowledged per shared fsync";
            Mutex.unlock metrics_mu))
      store
  in
  let t =
    {
      config;
      db;
      store;
      gc;
      writer;
      mu = Mutex.create ();
      writers_waiting = 0;
      published_version = 0;
      published = Hashtbl.create 16;
      sessions = 0;
      next_sid = 0;
      stopping = false;
      stop_r;
      stop_w = Some stop_w;
      metrics;
      metrics_mu;
      session_infos = Hashtbl.create 16;
      repl_attach = None;
      promote_hook = None;
    }
  in
  (* Live introspection providers on the shared Db (DESIGN.md §14):
     override the empty defaults so a SELECT served by any session sees
     the server's sessions and the combined metric registries. *)
  Sqlgraph.Db.register_virtual_table db ~name:"sqlgraph_stat_sessions"
    (fun () -> sessions_table t);
  Sqlgraph.Db.register_virtual_table db ~name:"sqlgraph_metrics" (fun () ->
      metrics_table ~extra:[ Sqlgraph.Db.registry db ] t);
  (* seed the snapshot with whatever recovery (or the embedder) loaded *)
  Mutex.lock writer;
  publish_locked t;
  Mutex.unlock writer;
  t

let config t = t.config
let db t = t.db
let store t = t.store
let stop_fd t = t.stop_r

(* --- replication wiring (lib/server/replication.ml) ---------------- *)

(* Handler installation races only with session threads *reading* the
   hooks, so both go under [mu]. *)
let set_repl_attach t f =
  Mutex.lock t.mu;
  t.repl_attach <- f;
  Mutex.unlock t.mu

let repl_attach t =
  Mutex.lock t.mu;
  let f = t.repl_attach in
  Mutex.unlock t.mu;
  f

let set_promote_hook t f =
  Mutex.lock t.mu;
  t.promote_hook <- f;
  Mutex.unlock t.mu

let promote_hook t =
  Mutex.lock t.mu;
  let f = t.promote_hook in
  Mutex.unlock t.mu;
  f

(* Install the hub's ship hook on the group-commit batcher (no-op for an
   in-memory server — nothing durable means nothing to replicate). *)
let set_ship t f =
  match t.gc with None -> () | Some gc -> Group_commit.set_ship gc f

(* The raw writer mutex, for the replication paths that cannot go
   through {!writer_acquire}'s load shedding: the hub's full-resync
   critical section and the standby's apply loop both need the lock
   unconditionally. *)
let writer_lock t = t.writer

let stopping t =
  Mutex.lock t.mu;
  let s = t.stopping in
  Mutex.unlock t.mu;
  s

(* Begin graceful shutdown: mark stopping and close the self-pipe's
   write end — every select on [stop_fd] wakes (EOF) now and forever. *)
let begin_stop t =
  Mutex.lock t.mu;
  t.stopping <- true;
  (match t.stop_w with
  | Some fd ->
    t.stop_w <- None;
    (try Unix.close fd with _ -> ())
  | None -> ());
  Mutex.unlock t.mu

(* --- admission ----------------------------------------------------- *)

let admit t =
  Mutex.lock t.mu;
  let r =
    if t.stopping then `Stopping
    else if t.sessions >= t.config.max_sessions then `Full
    else begin
      t.sessions <- t.sessions + 1;
      t.next_sid <- t.next_sid + 1;
      Hashtbl.replace t.session_infos t.next_sid
        {
          si_sid = t.next_sid;
          si_statements = 0;
          si_last_qid = None;
          si_snapshot = 0;
          si_in_txn = false;
          si_connected = Unix.gettimeofday ();
        };
      `Ok t.next_sid
    end
  in
  let active = t.sessions in
  Mutex.unlock t.mu;
  (match r with
  | `Ok _ ->
    metric_inc t "sqlgraph_server_sessions_total" 1 ~help:"Sessions accepted";
    metric_gauge t "sqlgraph_server_sessions_active" (float_of_int active)
      ~help:"Sessions currently connected"
  | `Full ->
    metric_inc t "sqlgraph_server_rejected_total" 1
      ~help:"Connections rejected at the session cap"
  | `Stopping -> ());
  r

let leave t ~sid =
  Mutex.lock t.mu;
  t.sessions <- t.sessions - 1;
  Hashtbl.remove t.session_infos sid;
  let active = t.sessions in
  Mutex.unlock t.mu;
  metric_gauge t "sqlgraph_server_sessions_active" (float_of_int active)

let active_sessions t =
  Mutex.lock t.mu;
  let n = t.sessions in
  Mutex.unlock t.mu;
  n

(* --- write path ---------------------------------------------------- *)

(* Load-shed check + blocking acquire.  The queue-depth gauge tracks how
   many sessions sit behind the writer lock; past the high-water mark a
   new writer is refused with a retry hint instead of queueing. *)
let writer_acquire t =
  Mutex.lock t.mu;
  if t.writers_waiting >= t.config.write_high_water then begin
    Mutex.unlock t.mu;
    metric_inc t "sqlgraph_server_load_shed_total" 1
      ~help:"Write statements refused at the write-queue high-water mark";
    `Busy t.config.busy_retry_ms
  end
  else begin
    t.writers_waiting <- t.writers_waiting + 1;
    let depth = t.writers_waiting in
    Mutex.unlock t.mu;
    metric_gauge t "sqlgraph_server_write_queue_depth" (float_of_int depth)
      ~help:"Sessions queued on the writer lock";
    Mutex.lock t.writer;
    Mutex.lock t.mu;
    t.writers_waiting <- t.writers_waiting - 1;
    let depth = t.writers_waiting in
    Mutex.unlock t.mu;
    (* re-publish after leaving the queue, so the gauge falls back to 0
       when the queue empties instead of sticking at its high-water mark *)
    metric_gauge t "sqlgraph_server_write_queue_depth" (float_of_int depth)
      ~help:"Sessions queued on the writer lock";
    `Ok
  end

let writer_release t = Mutex.unlock t.writer

let publish t = publish_locked t

(* Acknowledge durability: in group-commit mode wait until the shared
   fsync covers [target]; without a store (in-memory server) this is
   immediate. *)
let wait_durable t target =
  match t.gc with None -> () | Some gc -> Group_commit.wait_durable gc target

let log_target t =
  match t.store with None -> 0 | Some s -> Sqlgraph.Wal.logical_end s

(* --- read path ----------------------------------------------------- *)

let snapshot_version t =
  Mutex.lock t.mu;
  let v = t.published_version in
  Mutex.unlock t.mu;
  v

(* Bring a session's private Db up to the latest published snapshot:
   load only the entries whose version differs from what the session
   already holds ([seen]), drop vanished tables, and return the snapshot
   version.  Published tables are immutable (fresh copies on publish),
   so loading is structural sharing, not copying. *)
let refresh_snapshot t ~session_db ~seen ~last_version =
  Mutex.lock t.mu;
  let v = t.published_version in
  if v <> last_version then begin
    Hashtbl.iter
      (fun name (tbl, pv) ->
        match Hashtbl.find_opt seen name with
        | Some sv when sv = pv -> ()
        | _ ->
          (* mirror the publisher's version so the shared graph-index
             cache keys stay coherent across session catalogs *)
          Sqlgraph.Db.load_table ~version:pv session_db ~name tbl;
          Hashtbl.replace seen name pv)
      t.published;
    let stale =
      Hashtbl.fold
        (fun name _ acc ->
          if Hashtbl.mem t.published name then acc else name :: acc)
        seen []
    in
    List.iter
      (fun name ->
        Hashtbl.remove seen name;
        ignore (Storage.Catalog.drop (Sqlgraph.Db.catalog session_db) name))
      stale
  end;
  Mutex.unlock t.mu;
  v
