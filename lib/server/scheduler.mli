(** Shared state of the multi-session server: the writer lock, the
    published snapshot, admission control, and the server-wide metrics
    registry.  One [t] per server; every session thread holds a
    reference.  See the implementation header for the concurrency
    model. *)

(** Time source for session idle-deadline accounting (the pattern of
    [Telemetry.Trace.set_clock], scoped to one server).  [Wall] is
    production behaviour: the idle timeout is a single full-length
    [select].  [Manual f] reads virtual seconds from [f] and the session
    reader polls in short ticks instead — a test advances the virtual
    clock and the timeout fires deterministically, with no real-time
    sleeps to race against. *)
type clock = Wall | Manual of (unit -> float)

type config = {
  max_sessions : int;
      (** admission cap; beyond it connections get [ERR busy].  Clamped
          at {!create} to stay safely below [FD_SETSIZE] (1024), since
          session I/O multiplexes with [Unix.select]. *)
  idle_timeout_ms : int;  (** close a session idle longer than this *)
  max_line_bytes : int;  (** request frame cap; longer lines are a protocol error *)
  write_high_water : int;  (** load-shed writes when this many are queued *)
  busy_retry_ms : int;  (** retry hint attached to busy rejections *)
  budget : Sqlgraph.Governor.budget;  (** per-statement resource budget *)
  clock : clock;  (** idle-deadline time source; [Wall] outside tests *)
}

val default_config : config

type t

val create :
  ?config:config -> db:Sqlgraph.Db.t -> store:Sqlgraph.Wal.t option -> unit -> t
(** When [store] is given the server runs durable with group commit
    (the store is switched to deferred-sync mode); [None] is a plain
    in-memory server.  The initial catalog is published as snapshot
    version 0. *)

val config : t -> config
val db : t -> Sqlgraph.Db.t
val store : t -> Sqlgraph.Wal.t option

(** {1 Shutdown} *)

val stop_fd : t -> Unix.file_descr
(** Self-pipe read end: becomes readable (EOF) permanently once
    {!begin_stop} runs — select on it alongside the session socket. *)

val begin_stop : t -> unit
val stopping : t -> bool

(** {1 Admission} *)

val admit : t -> [ `Ok of int | `Full | `Stopping ]
(** Try to enter a session slot; [`Ok sid] carries the session id. *)

val leave : t -> sid:int -> unit
val active_sessions : t -> int

(** {1 Introspection (DESIGN.md §14)} *)

val session_note :
  t -> sid:int -> qid:string option -> snapshot:int -> in_txn:bool -> unit
(** Record one served statement against the session's
    [sqlgraph_stat_sessions] row: bump its statement count and stamp
    the query id, observed snapshot version and transaction flag. *)

val sessions_table : t -> Storage.Table.t
(** Materialize [sqlgraph_stat_sessions]: one row per connected
    session. *)

val metrics_table : ?extra:Telemetry.Registry.t list -> t -> Storage.Table.t
(** Materialize [sqlgraph_metrics] from the server registry plus any
    [extra] registries (the shared Db's, a session's private one) —
    a best-effort live read. *)

(** {1 Write path} *)

val writer_acquire : t -> [ `Ok | `Busy of int ]
(** Block for the writer lock, unless the write queue is at the
    high-water mark — then shed load with [`Busy retry_ms]. *)

val writer_release : t -> unit

val publish : t -> unit
(** Publish the current catalog as a new immutable snapshot version.
    Must be called with the writer lock held. *)

val log_target : t -> int
(** The WAL's logical end — capture while holding the writer lock,
    then pass to {!wait_durable} after release.  0 without a store. *)

val wait_durable : t -> int -> unit
(** Group commit: block until a shared fsync covers [target].  Raises
    if the covering fsync round failed (report the statement as an
    error, do not acknowledge). *)

(** {1 Read path} *)

val snapshot_version : t -> int

val refresh_snapshot :
  t ->
  session_db:Sqlgraph.Db.t ->
  seen:(string, int) Hashtbl.t ->
  last_version:int ->
  int
(** Bring a session's private [Db] up to the latest published snapshot
    and return its version.  [seen] is the session's record of which
    table versions it already loaded (owned by the session thread);
    only changed tables are reloaded, and loading shares structure with
    the published copies — it never copies rows. *)

(** {1 Metrics}

    The server-wide registry (sessions, queue depths, group-commit
    sizes).  [Registry] itself is single-writer, so all updates go
    through these mutex-guarded helpers; {!metrics} is for rendering
    after the server has quiesced (or for best-effort live reads). *)

val metrics : t -> Telemetry.Registry.t
val metric_inc : t -> ?help:string -> string -> int -> unit
val metric_gauge : t -> ?help:string -> string -> float -> unit
val metric_observe : t -> ?help:string -> string -> float -> unit

(** {1 Replication wiring (DESIGN.md §15)}

    The scheduler itself is role-agnostic; {!Replication} installs the
    hooks that give it a role.  On a primary, [set_repl_attach] receives
    standby handshakes and [set_ship] forwards each group-commit batch;
    on a standby, [set_promote_hook] serves the PROMOTE verb and
    [set_publish_floor] keeps the published snapshot version at or above
    everything the old primary acknowledged. *)

val set_repl_attach :
  t -> (Unix.file_descr -> gen:int -> offset:int -> unit) option -> unit
(** Install the hub's handshake handler: a session that reads a
    [REPLICA gen=.. offset=..] line hands its socket over (without
    closing it) and exits. *)

val repl_attach :
  t -> (Unix.file_descr -> gen:int -> offset:int -> unit) option

val set_promote_hook : t -> (unit -> (int, string) result) option -> unit
(** Install the standby's promotion handler; [Ok gen] is the fenced new
    generation reported on the [OK PROMOTE gen=<g>] line. *)

val promote_hook : t -> (unit -> (int, string) result) option

val set_ship : t -> (from:int -> upto:int -> unit) option -> unit
(** Forward to {!Group_commit.set_ship} (no-op without a store): ship
    each newly durable byte range to the replicas before the batch's
    commits are acknowledged. *)

val set_publish_floor : t -> int -> unit
(** Raise the published snapshot version to at least the given value
    (no table changes) — the standby applies the [snap=] values riding
    the stream so post-failover reads never observe a version below one
    already seen on the old primary. *)

val writer_lock : t -> Mutex.t
(** The raw writer mutex, for replication paths that must bypass
    {!writer_acquire}'s load shedding (full-resync snapshot, standby
    apply loop). *)
