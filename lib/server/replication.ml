(* WAL-streaming hot standby (DESIGN.md §15).

   Two roles over the ordinary line protocol:

   - {!Hub} runs on the primary.  A session that reads a [REPLICA
     gen=<g> offset=<o>] handshake hands its socket over; the hub —
     under the writer lock, with the log flushed and fsynced — either
     tails the stream from the standby's offset (byte-identical mirror:
     same generation, offset within the durable log) or ships a full
     resync first (the current checkpoint's files, then the log from its
     start).  From then on the group-commit leader's ship hook forwards
     every newly durable byte range *before* the batch's commits are
     acknowledged: once a client sees OK, the frames are in the kernel
     socket buffer to each live replica, so [kill -9] of the primary
     process loses no acknowledged commit.  A replica whose socket
     errors (or stalls past the send timeout) is dropped from the set —
     replication never fails a commit.

   - {!Standby} runs on the replica.  It connects to the primary,
     handshakes with its local generation + log offset, reassembles
     complete frames from the stream (partial bytes never reach the
     local log), appends them verbatim (log-before-apply), and applies
     each statement to the shared database under the scheduler's writer
     lock — buffering in-transaction 'S' records until their 'C' commit
     marker, so a transaction the primary never acknowledged is never
     visible (no fabricated rows).  After each applied batch it
     publishes a snapshot — with a version floor taken from the [snap=]
     values riding the stream, so post-failover reads stay monotone —
     and re-warms the enabled graph indices, so the first path query
     after promotion hits a warm cache.  [PROMOTE] fences the stream,
     checkpoints the applied state into a new generation (discarding any
     shipped-but-uncommitted tail), installs durability hooks and starts
     accepting writes.

   Fault sites: [repl_handshake] (hub rejects an attaching standby),
   [repl_send] (a ship fails mid-stream), [repl_apply] (the standby dies
   applying a batch), [promote_fence] (inside {!Wal.promote}). *)

module Db = Sqlgraph.Db
module Wal = Sqlgraph.Wal
module Fault = Sqlgraph.Fault

let now () = Unix.gettimeofday ()

let rec write_all fd s off len =
  if len > 0 then
    match Unix.write_substring fd s off len with
    | n -> write_all fd s (off + n) (len - n)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_all fd s off len

let send_line fd line =
  let payload = line ^ "\n" in
  write_all fd payload 0 (String.length payload)

let read_whole_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* --- frame walking -------------------------------------------------- *)

let u32 s i =
  Char.code s.[i]
  lor (Char.code s.[i + 1] lsl 8)
  lor (Char.code s.[i + 2] lsl 16)
  lor (Char.code s.[i + 3] lsl 24)

(* Split a frame-aligned byte range into [(start, len, frame count)]
   chunks of at most [max_bytes] each, never cutting a frame (a single
   oversized frame gets a chunk of its own).  Durable log ranges are
   frame-aligned by construction — appends, flushes and abort-repairs
   all move in whole frames — so a torn walk here is a logic error. *)
let chunk_frames bytes ~max_bytes =
  let n = String.length bytes in
  let rec go i cstart ccount acc =
    if i >= n then
      List.rev (if ccount > 0 then (cstart, i - cstart, ccount) :: acc else acc)
    else begin
      let flen = 8 + u32 bytes i in
      if i + flen > n then
        failwith "replication: durable log range is not frame-aligned";
      if ccount > 0 && i + flen - cstart > max_bytes then
        go i i 0 ((cstart, i - cstart, ccount) :: acc)
      else go (i + flen) cstart (ccount + 1) acc
    end
  in
  go 0 0 0 []

let max_ship_chunk = 256 * 1024

(* --- buffered line reader ------------------------------------------ *)

type reader = { r_fd : Unix.file_descr; r_buf : Buffer.t; r_chunk : Bytes.t }

let reader fd = { r_fd = fd; r_buf = Buffer.create 4096; r_chunk = Bytes.create 65536 }

let rec read_line r =
  match String.index_opt (Buffer.contents r.r_buf) '\n' with
  | Some i ->
    let all = Buffer.contents r.r_buf in
    let line = String.sub all 0 i in
    Buffer.clear r.r_buf;
    Buffer.add_substring r.r_buf all (i + 1) (String.length all - i - 1);
    line
  | None -> (
    match Unix.read r.r_fd r.r_chunk 0 (Bytes.length r.r_chunk) with
    | 0 -> raise End_of_file
    | n ->
      Buffer.add_subbytes r.r_buf r.r_chunk 0 n;
      read_line r
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> read_line r)

let peer_name fd =
  match Unix.getpeername fd with
  | Unix.ADDR_UNIX p -> "unix:" ^ (if p = "" then "<anon>" else p)
  | Unix.ADDR_INET (a, p) ->
    Printf.sprintf "%s:%d" (Unix.string_of_inet_addr a) p
  | exception _ -> "<detached>"

let stat_row ~role ~state ~peer ~gen ~shipped ~applied ~heartbeat =
  let module V = Storage.Value in
  [
    V.Str role;
    V.Str state;
    V.Str peer;
    V.Int gen;
    V.Int shipped;
    V.Int applied;
    V.Int (max 0 (shipped - applied));
    V.Float heartbeat;
  ]

(* ==================================================================== *)
(* Primary: the replication hub                                         *)
(* ==================================================================== *)

module Hub = struct
  type replica_conn = {
    rc_fd : Unix.file_descr;
    rc_peer : string;
    mutable rc_sent_upto : int; (* log bytes already on this socket *)
    mutable rc_last_send : float;
  }

  type t = {
    sched : Scheduler.t;
    store : Wal.t;
    db : Db.t;
    mu : Mutex.t;
        (* guards [replicas] and serializes every send: the ship hook,
           the heartbeat thread and a status read never interleave
           writes on one socket *)
    mutable replicas : replica_conn list;
    mutable stopping : bool;
    ping_interval_ms : int;
    mutable heartbeat : Thread.t option;
  }

  let replica_count t =
    Mutex.lock t.mu;
    let n = List.length t.replicas in
    Mutex.unlock t.mu;
    n

  let gauge_replicas t =
    Scheduler.metric_gauge t.sched "sqlgraph_repl_replicas"
      (float_of_int (replica_count t))
      ~help:"Connected streaming replicas"

  (* Send one frame-aligned range to one socket as REPL WAL lines.
     Caller holds [mu] (or the conn is not yet registered). *)
  let ship_range fd ~base ~bytes ~snap =
    List.iter
      (fun (cstart, clen, ccount) ->
        Fault.hit ~site:"repl_send";
        send_line fd
          (Protocol.repl_wal ~off:(base + cstart) ~count:ccount ~snap
             ~data:(String.sub bytes cstart clen)))
      (chunk_frames bytes ~max_bytes:max_ship_chunk)

  (* The group-commit leader's ship hook: forward [from, upto) — already
     durable on the primary — to every live replica, before any commit
     in the batch is acknowledged.  A failing replica is dropped; the
     commit round never fails. *)
  let ship t ~from ~upto =
    let snap = Scheduler.snapshot_version t.sched in
    Mutex.lock t.mu;
    let dead = ref [] in
    List.iter
      (fun rc ->
        let f = max from rc.rc_sent_upto in
        if f < upto then
          match
            let bytes = Wal.read_range t.store ~pos:f ~len:(upto - f) in
            ship_range rc.rc_fd ~base:f ~bytes ~snap;
            String.length bytes
          with
          | n ->
            rc.rc_sent_upto <- upto;
            rc.rc_last_send <- now ();
            Scheduler.metric_inc t.sched "sqlgraph_repl_shipped_bytes_total" n
              ~help:"WAL bytes shipped to replicas"
          | exception _ ->
            (try Unix.close rc.rc_fd with _ -> ());
            dead := rc :: !dead)
      t.replicas;
    if !dead <> [] then
      t.replicas <- List.filter (fun rc -> not (List.memq rc !dead)) t.replicas;
    Scheduler.metric_gauge t.sched "sqlgraph_repl_shipped_offset"
      (float_of_int (List.fold_left (fun acc rc -> max acc rc.rc_sent_upto) 0 t.replicas));
    Mutex.unlock t.mu;
    if !dead <> [] then begin
      Scheduler.metric_inc t.sched "sqlgraph_repl_dropped_total"
        (List.length !dead)
        ~help:"Replicas dropped on a failed ship";
      gauge_replicas t
    end

  (* Handshake service: runs on the (former) session's thread, which
     exits right after.  Under the writer lock the log is quiescent, so
     checkpoint files + flushed log tail form a consistent cut. *)
  let attach t fd ~gen ~offset =
    Fault.hit ~site:"repl_handshake";
    (try Unix.setsockopt_float fd Unix.SO_SNDTIMEO 5.0 with _ -> ());
    let peer = peer_name fd in
    let wl = Scheduler.writer_lock t.sched in
    Mutex.lock wl;
    match
      Fun.protect
        ~finally:(fun () -> Mutex.unlock wl)
        (fun () ->
          Wal.flush_now t.store;
          Wal.fsync_now t.store;
          let upto = Wal.logical_end t.store in
          let my_gen = Wal.gen t.store in
          let snap = Scheduler.snapshot_version t.sched in
          let from =
            if gen = my_gen && offset >= Wal.header_size && offset <= upto
            then offset (* byte-identical mirror: just tail the log *)
            else begin
              (* divergent (fresh standby, older generation, or a log
                 longer than ours — a fenced old primary rejoining):
                 ship the whole current checkpoint, then the whole log *)
              let ckpt =
                Wal.checkpoint_path ~dir:(Wal.dir t.store) ~gen:my_gen
              in
              let files =
                if Sys.file_exists ckpt then
                  Sys.readdir ckpt |> Array.to_list |> List.sort compare
                else []
              in
              send_line fd
                (Protocol.repl_snap ~gen:my_gen ~files:(List.length files));
              List.iter
                (fun name ->
                  send_line fd
                    (Protocol.repl_file ~name
                       ~data:(read_whole_file (Filename.concat ckpt name))))
                files;
              Wal.header_size
            end
          in
          send_line fd (Protocol.repl_tail ~gen:my_gen ~from);
          if upto > from then
            ship_range fd ~base:from
              ~bytes:(Wal.read_range t.store ~pos:from ~len:(upto - from))
              ~snap;
          { rc_fd = fd; rc_peer = peer; rc_sent_upto = upto; rc_last_send = now () })
    with
    | rc ->
      Mutex.lock t.mu;
      t.replicas <- rc :: t.replicas;
      Mutex.unlock t.mu;
      Scheduler.metric_inc t.sched "sqlgraph_repl_attached_total" 1
        ~help:"Standby handshakes served";
      gauge_replicas t
    | exception _ ->
      (try Unix.close fd with _ -> ());
      Scheduler.metric_inc t.sched "sqlgraph_repl_handshake_failures_total" 1
        ~help:"Standby handshakes that failed"

  (* Idle keepalive: a PING tells the standby the primary is alive (and
     carries the snapshot floor) even when no writes flow. *)
  let heartbeat_loop t =
    let interval = float_of_int t.ping_interval_ms /. 1000. in
    while not t.stopping do
      Unix.sleepf (interval /. 2.);
      if not t.stopping then begin
        let snap = Scheduler.snapshot_version t.sched in
        Mutex.lock t.mu;
        let dead = ref [] in
        List.iter
          (fun rc ->
            if now () -. rc.rc_last_send >= interval then
              match
                send_line rc.rc_fd
                  (Protocol.repl_ping ~upto:rc.rc_sent_upto ~snap)
              with
              | () -> rc.rc_last_send <- now ()
              | exception _ ->
                (try Unix.close rc.rc_fd with _ -> ());
                dead := rc :: !dead)
          t.replicas;
        if !dead <> [] then
          t.replicas <-
            List.filter (fun rc -> not (List.memq rc !dead)) t.replicas;
        Mutex.unlock t.mu;
        if !dead <> [] then gauge_replicas t
      end
    done

  let status_table t =
    let gen = Wal.gen t.store in
    let applied = Wal.logical_end t.store in
    Mutex.lock t.mu;
    let rows =
      match t.replicas with
      | [] ->
        [
          stat_row ~role:"primary" ~state:"idle" ~peer:"" ~gen
            ~shipped:applied ~applied ~heartbeat:0.;
        ]
      | reps ->
        List.rev_map
          (fun rc ->
            stat_row ~role:"primary" ~state:"streaming" ~peer:rc.rc_peer ~gen
              ~shipped:rc.rc_sent_upto ~applied
              ~heartbeat:(now () -. rc.rc_last_send))
          reps
    in
    Mutex.unlock t.mu;
    Storage.Table.of_rows Db.stat_replication_schema rows

  let create ?(ping_interval_ms = 1000) ~sched ~store ~db () =
    let t =
      {
        sched;
        store;
        db;
        mu = Mutex.create ();
        replicas = [];
        stopping = false;
        ping_interval_ms;
        heartbeat = None;
      }
    in
    Db.register_virtual_table db ~name:"sqlgraph_stat_replication" (fun () ->
        status_table t);
    Scheduler.set_repl_attach sched (Some (fun fd ~gen ~offset -> attach t fd ~gen ~offset));
    Scheduler.set_ship sched (Some (fun ~from ~upto -> ship t ~from ~upto));
    t.heartbeat <- Some (Thread.create heartbeat_loop t);
    t

  let stop t =
    t.stopping <- true;
    Scheduler.set_repl_attach t.sched None;
    Scheduler.set_ship t.sched None;
    (match t.heartbeat with Some th -> Thread.join th | None -> ());
    t.heartbeat <- None;
    Mutex.lock t.mu;
    List.iter (fun rc -> try Unix.close rc.rc_fd with _ -> ()) t.replicas;
    t.replicas <- [];
    Mutex.unlock t.mu
end

(* ==================================================================== *)
(* Replica: the standby                                                 *)
(* ==================================================================== *)

module Standby = struct
  type state = Connecting | Syncing | Streaming | Promoted | Stopped

  let state_name = function
    | Connecting -> "connecting"
    | Syncing -> "syncing"
    | Streaming -> "streaming"
    | Promoted -> "promoted"
    | Stopped -> "stopped"

  type t = {
    sched : Scheduler.t;
    store : Wal.t;
    db : Db.t; (* the standby server's shared database *)
    primary : Client.endpoint;
    reconnect_ms : int;
    mu : Mutex.t; (* guards state / fd / counters *)
    mutable st : state;
    mutable fd : Unix.file_descr option;
    mutable shipped_upto : int; (* highest offset the primary named *)
    mutable last_heartbeat : float;
    mutable pending : Wal.record list;
        (* reversed 'S' run of an in-flight transaction, awaiting its
           'C' marker — possibly spanning several REPL WAL messages.
           Never applied without the marker: the primary did not
           acknowledge that transaction, so surfacing it would fabricate
           rows a failed-over client never wrote. *)
    mutable applied_records : int;
    mutable thread : Thread.t option;
  }

  exception Stream_error of string

  let state t =
    Mutex.lock t.mu;
    let s = t.st in
    Mutex.unlock t.mu;
    s

  let applied_offset t = Wal.logical_end t.store

  let lag t =
    Mutex.lock t.mu;
    let l = max 0 (t.shipped_upto - Wal.logical_end t.store) in
    Mutex.unlock t.mu;
    l

  let status_table t =
    Mutex.lock t.mu;
    let row =
      stat_row
        ~role:(match t.st with Promoted -> "primary" | _ -> "standby")
        ~state:(state_name t.st)
        ~peer:(Client.endpoint_name t.primary)
        ~gen:(Wal.gen t.store)
        ~shipped:t.shipped_upto ~applied:(Wal.logical_end t.store)
        ~heartbeat:
          (if t.last_heartbeat = 0. then -1. else now () -. t.last_heartbeat)
    in
    Mutex.unlock t.mu;
    Storage.Table.of_rows Db.stat_replication_schema [ row ]

  (* Apply decoded records to the shared db.  Caller holds the writer
     lock; the db is read-only between batches (sessions must never
     write a standby), so the flag is toggled just around the replay. *)
  let apply_records t records =
    Db.set_readonly t.db false;
    Fun.protect
      ~finally:(fun () -> Db.set_readonly t.db true)
      (fun () ->
        List.iter
          (fun ((kind, _, _) as r) ->
            match (kind : Wal.kind) with
            | Wal.Autocommit ->
              ignore (Wal.replay t.db [ r ]);
              t.applied_records <- t.applied_records + 1
            | Wal.Txn_stmt -> t.pending <- r :: t.pending
            | Wal.Commit_marker ->
              let txn = List.rev (r :: t.pending) in
              t.pending <- [];
              ignore (Wal.replay t.db txn);
              t.applied_records <- t.applied_records + List.length txn)
          records)

  (* Publish the applied state (writer lock held), with the stream's
     snapshot version as a floor, and re-warm the enabled graph indices
     so the first post-failover path query is a cache hit.  Publish
     first, floor second: flooring first would make the publish bump
     count past the primary's own version, and a client failing *back*
     would then see the live primary as stale. *)
  let publish_applied t ~snap =
    Scheduler.publish t.sched;
    Scheduler.set_publish_floor t.sched snap;
    let built = Db.warm_graph_indexes t.db in
    if built > 0 then
      Scheduler.metric_inc t.sched "sqlgraph_repl_indices_warmed_total" built
        ~help:"Graph indices rebuilt by the standby apply loop"

  let note_metrics t =
    Scheduler.metric_gauge t.sched "sqlgraph_repl_applied_offset"
      (float_of_int (Wal.logical_end t.store))
      ~help:"Standby log offset applied";
    Scheduler.metric_gauge t.sched "sqlgraph_repl_lag_bytes"
      (float_of_int (lag t))
      ~help:"Shipped-but-unapplied bytes"

  (* One [REPL WAL] message: reassemble complete frames, append them
     verbatim to the local log, apply, publish.  The hub only ever sends
     frame-aligned chunks, so leftover bytes are a protocol violation
     (the reconnect handshake resynchronizes). *)
  let handle_wal t ~off ~count ~snap ~data =
    Fault.hit ~site:"repl_apply";
    if off <> Wal.logical_end t.store then
      raise
        (Stream_error
           (Printf.sprintf "stream offset %d, local log end %d" off
              (Wal.logical_end t.store)));
    let buf = Wal.Reassembly.create () in
    Wal.Reassembly.feed buf data;
    let raws = Buffer.create (String.length data) in
    let records = ref [] in
    let n = ref 0 in
    (try
       let rec drain () =
         match Wal.Reassembly.pop buf with
         | Some (raw, r) ->
           Buffer.add_string raws raw;
           records := r :: !records;
           incr n;
           drain ()
         | None -> ()
       in
       drain ()
     with Wal.Corrupt msg -> raise (Stream_error ("corrupt frame: " ^ msg)));
    if Wal.Reassembly.pending buf > 0 then
      raise (Stream_error "partial frame in ship chunk");
    if !n <> count then
      raise (Stream_error (Printf.sprintf "expected %d frames, got %d" count !n));
    let wl = Scheduler.writer_lock t.sched in
    Mutex.lock wl;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock wl)
      (fun () ->
        if state t = Promoted then raise (Stream_error "promoted");
        Wal.append_frames t.store ~count (Buffer.contents raws);
        apply_records t (List.rev !records);
        publish_applied t ~snap);
    Mutex.lock t.mu;
    t.shipped_upto <- max t.shipped_upto (Wal.logical_end t.store);
    t.last_heartbeat <- now ();
    Mutex.unlock t.mu;
    note_metrics t

  (* A full resync: land the checkpoint files atomically, fence the
     local log onto the primary's generation, and reload the database
     from the shipped checkpoint. *)
  let handle_snap t rd ~gen ~files =
    let ckpt = Wal.checkpoint_path ~dir:(Wal.dir t.store) ~gen in
    (try Unix.mkdir ckpt 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    for _ = 1 to files do
      let line = read_line rd in
      match (Protocol.name_field line, Protocol.data_field line) with
      | Some name, Some data when Filename.basename name = name ->
        Wal.write_file_atomic (Filename.concat ckpt name) data
      | _ -> raise (Stream_error ("bad REPL FILE line: " ^ line))
    done;
    let wl = Scheduler.writer_lock t.sched in
    Mutex.lock wl;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock wl)
      (fun () ->
        if state t = Promoted then raise (Stream_error "promoted");
        Wal.reset_generation t.store ~gen;
        t.pending <- [];
        let cat = Db.catalog t.db in
        let manifest = Filename.concat ckpt "_manifest.csv" in
        let keep =
          if files > 0 && Sys.file_exists manifest then begin
            match Sqlgraph.Persist.load ~dir:ckpt with
            | Error e -> raise (Stream_error (Sqlgraph.Error.to_string e))
            | Ok fresh ->
              let fcat = Db.catalog fresh in
              let names =
                List.filter
                  (fun n -> not (Db.is_reserved_name n))
                  (Storage.Catalog.names fcat)
              in
              List.iter
                (fun n ->
                  match Storage.Catalog.find fcat n with
                  | Some tbl -> Db.load_table t.db ~name:n tbl
                  | None -> ())
                names;
              names
          end
          else []
        in
        List.iter
          (fun n ->
            if (not (Db.is_reserved_name n)) && not (List.mem n keep) then
              ignore (Storage.Catalog.drop cat n))
          (Storage.Catalog.names cat);
        publish_applied t ~snap:(Scheduler.snapshot_version t.sched));
    Scheduler.metric_inc t.sched "sqlgraph_repl_resyncs_total" 1
      ~help:"Full checkpoint resyncs performed"

  let dispatch t rd line =
    if String.length line >= 9 && String.sub line 0 9 = "REPL WAL " then
      match
        ( Protocol.int_field line "off",
          Protocol.int_field line "count",
          Protocol.int_field line "snap",
          Protocol.data_field line )
      with
      | Some off, Some count, Some snap, Some data ->
        handle_wal t ~off ~count ~snap ~data
      | _ -> raise (Stream_error ("bad REPL WAL line: " ^ line))
    else if String.length line >= 10 && String.sub line 0 10 = "REPL PING " then begin
      (match Protocol.int_field line "upto" with
      | Some upto ->
        Mutex.lock t.mu;
        t.shipped_upto <- max t.shipped_upto upto;
        t.last_heartbeat <- now ();
        Mutex.unlock t.mu
      | None -> ());
      (match Protocol.int_field line "snap" with
      | Some snap -> Scheduler.set_publish_floor t.sched snap
      | None -> ());
      note_metrics t
    end
    else if String.length line >= 10 && String.sub line 0 10 = "REPL SNAP " then (
      match (Protocol.int_field line "gen", Protocol.int_field line "files") with
      | Some gen, Some files -> handle_snap t rd ~gen ~files
      | _ -> raise (Stream_error ("bad REPL SNAP line: " ^ line)))
    else if String.length line >= 10 && String.sub line 0 10 = "REPL TAIL " then (
      match (Protocol.int_field line "gen", Protocol.int_field line "from") with
      | Some gen, Some from ->
        if gen <> Wal.gen t.store || from <> Wal.logical_end t.store then
          raise
            (Stream_error
               (Printf.sprintf "tail gen=%d from=%d vs local gen=%d end=%d" gen
                  from (Wal.gen t.store) (Wal.logical_end t.store)));
        Mutex.lock t.mu;
        if t.st = Syncing then t.st <- Streaming;
        Mutex.unlock t.mu
      | _ -> raise (Stream_error ("bad REPL TAIL line: " ^ line)))
    else raise (Stream_error ("unexpected line from primary: " ^ line))

  let set_state t s =
    Mutex.lock t.mu;
    (match t.st with
    | Promoted | Stopped -> ()
    | _ -> t.st <- s);
    Mutex.unlock t.mu

  let connect_fd = function
    | Client.Unix_ep p ->
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      (try Unix.connect fd (Unix.ADDR_UNIX p)
       with e ->
         (try Unix.close fd with _ -> ());
         raise e);
      fd
    | Client.Tcp_ep (h, p) ->
      let addr =
        try (Unix.gethostbyname h).Unix.h_addr_list.(0)
        with Not_found -> Unix.inet_addr_of_string h
      in
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      (try Unix.connect fd (Unix.ADDR_INET (addr, p))
       with e ->
         (try Unix.close fd with _ -> ());
         raise e);
      fd

  (* The standby's receive loop: connect, handshake, stream, and on any
     failure reconnect with a fixed pause — the handshake re-negotiates
     the exact resume point, so a dropped connection costs nothing but
     latency.  Exits when promoted or stopped. *)
  let run t =
    let live () = match state t with Promoted | Stopped -> false | _ -> true in
    while live () do
      set_state t Connecting;
      (match connect_fd t.primary with
      | exception _ -> Unix.sleepf (float_of_int t.reconnect_ms /. 1000.)
      | fd -> (
        Mutex.lock t.mu;
        t.fd <- Some fd;
        Mutex.unlock t.mu;
        let rd = reader fd in
        (try
           let _hello = read_line rd in
           send_line fd
             (Protocol.replica_handshake ~gen:(Wal.gen t.store)
                ~offset:(Wal.logical_end t.store));
           set_state t Syncing;
           while live () do
             dispatch t rd (read_line rd)
           done
         with
        | End_of_file | Stream_error _ | Unix.Unix_error _ | Wal.Corrupt _ -> ()
        | _ -> ());
        Mutex.lock t.mu;
        t.fd <- None;
        Mutex.unlock t.mu;
        (try Unix.close fd with _ -> ());
        if live () then Unix.sleepf (float_of_int t.reconnect_ms /. 1000.)))
    done

  (* Promotion: fence the stream (state flip + socket shutdown wakes a
     blocked receive), then — under the writer lock, serialized against
     any in-flight apply — checkpoint the applied state into a fresh
     generation (discarding the shipped-but-uncommitted 'S' tail),
     install durability hooks, drop read-only, publish.  From here the
     server accepts writes and can itself host a hub. *)
  let promote t =
    Mutex.lock t.mu;
    match t.st with
    | Promoted ->
      Mutex.unlock t.mu;
      Error "already promoted"
    | Stopped ->
      Mutex.unlock t.mu;
      Error "standby stopped"
    | _ ->
      t.st <- Promoted;
      (match t.fd with
      | Some fd -> ( try Unix.shutdown fd Unix.SHUTDOWN_ALL with _ -> ())
      | None -> ());
      Mutex.unlock t.mu;
      let wl = Scheduler.writer_lock t.sched in
      Mutex.lock wl;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock wl)
        (fun () ->
          t.pending <- [];
          match Wal.promote t.store t.db with
          | Ok () ->
            Scheduler.publish t.sched;
            Scheduler.metric_inc t.sched "sqlgraph_repl_promotions_total" 1
              ~help:"Standby promotions";
            Ok (Wal.gen t.store)
          | Error e ->
            (* the fence failed: stay a (stalled) standby rather than
               half-promote — the operator can retry *)
            Mutex.lock t.mu;
            t.st <- Connecting;
            Mutex.unlock t.mu;
            Error (Sqlgraph.Error.to_string e))

  let create ?(reconnect_ms = 200) ~sched ~store ~db ~primary () =
    let t =
      {
        sched;
        store;
        db;
        primary;
        reconnect_ms;
        mu = Mutex.create ();
        st = Connecting;
        fd = None;
        shipped_upto = 0;
        last_heartbeat = 0.;
        pending = [];
        applied_records = 0;
        thread = None;
      }
    in
    Db.register_virtual_table db ~name:"sqlgraph_stat_replication" (fun () ->
        status_table t);
    Scheduler.set_promote_hook sched (Some (fun () -> promote t));
    t.thread <- Some (Thread.create run t);
    t

  let stop t =
    Mutex.lock t.mu;
    if t.st <> Promoted then t.st <- Stopped;
    (match t.fd with
    | Some fd -> ( try Unix.shutdown fd Unix.SHUTDOWN_ALL with _ -> ())
    | None -> ());
    Mutex.unlock t.mu;
    (match t.thread with Some th -> Thread.join th | None -> ());
    t.thread <- None
end
