(** WAL-streaming hot standby (DESIGN.md §15).

    {!Hub} runs on the primary: it serves standby handshakes, ships
    every group-commit batch's newly durable WAL range {e before} the
    batch's commits are acknowledged (so [kill -9] of the primary loses
    no acknowledged commit — the frames are already in each replica's
    socket buffer), and heartbeats idle replicas.

    {!Standby} runs on the replica: it reassembles complete frames from
    the stream, appends them verbatim to its own log (a byte-identical
    mirror), applies committed statements to the shared database —
    in-transaction records buffer until their commit marker, so an
    unacknowledged transaction is never visible — publishes snapshots
    with a version floor carried on the stream, keeps the graph-index
    cache warm, and serves [PROMOTE].

    Fault sites: [repl_handshake], [repl_send], [repl_apply],
    [promote_fence]. *)

module Hub : sig
  type t

  val create :
    ?ping_interval_ms:int ->
    sched:Scheduler.t ->
    store:Sqlgraph.Wal.t ->
    db:Sqlgraph.Db.t ->
    unit ->
    t
  (** Wire the hub into a primary server: installs the scheduler's
      replica-attach and ship hooks, registers the live
      [sqlgraph_stat_replication] provider on the shared database, and
      starts the heartbeat thread (default 1000 ms interval). *)

  val replica_count : t -> int

  val status_table : t -> Storage.Table.t
  (** One [sqlgraph_stat_replication] row per connected replica (or a
      single idle row). *)

  val stop : t -> unit
  (** Uninstall the hooks, close every replica socket, join the
      heartbeat thread. *)
end

module Standby : sig
  type t

  type state = Connecting | Syncing | Streaming | Promoted | Stopped

  val create :
    ?reconnect_ms:int ->
    sched:Scheduler.t ->
    store:Sqlgraph.Wal.t ->
    db:Sqlgraph.Db.t ->
    primary:Client.endpoint ->
    unit ->
    t
  (** Start a standby against [primary]: installs the scheduler's
      promote hook, registers the live [sqlgraph_stat_replication]
      provider, and spawns the receive loop ([store] must come from
      {!Sqlgraph.Wal.open_replica}).  The loop reconnects with a fixed
      pause (default 200 ms) on any failure; the handshake renegotiates
      the exact resume point each time. *)

  val state : t -> state
  val state_name : state -> string

  val applied_offset : t -> int
  (** Local log bytes appended and applied. *)

  val lag : t -> int
  (** Bytes the primary has named (shipped or pinged) that are not yet
      applied locally. *)

  val promote : t -> (int, string) result
  (** Fence the stream and turn this standby into a primary:
      checkpoint the applied state into a fresh generation (discarding
      any shipped-but-uncommitted transaction tail), install durability
      hooks, clear read-only, publish.  Returns the new generation.
      Also reachable over the wire as the [PROMOTE] verb. *)

  val status_table : t -> Storage.Table.t

  val stop : t -> unit
  (** Stop the receive loop (no-op on a promoted standby beyond joining
      the already-exited thread). *)
end
