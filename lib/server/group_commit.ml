(* Group commit: batch many sessions' commits into one WAL fsync.

   The store runs in deferred-sync mode (Wal.set_deferred_sync), so the
   durability hooks append — under the scheduler's writer lock — but
   never fsync.  A session that needs its statement durable captures the
   log's logical end as its *target* and calls [wait_durable]:

   - if the target is already covered by a finished fsync, return;
   - else if a leader is mid-fsync, wait on the condition variable —
     the in-flight fsync (or the next one) will cover the target;
   - else become the leader: briefly take the writer lock to flush every
     session's buffered appends to the fd, record the flushed length as
     the batch's reach, release the lock, and fsync with *no* lock held
     (fault site "group_fsync") so concurrent statements keep appending
     while the disk syncs.  Then publish the reach, wake everyone, and
     re-check.

   The flush needs the writer lock so it can never land mid-statement:
   a statement's append + apply + abort-repair all happen under that
   lock, which is what keeps Wal.dur_abort's truncate-on-failure sound
   in deferred mode (truncation only ever removes bytes no leader has
   flushed yet... because a leader cannot flush while the statement
   holds the lock).

   Failure: an fsync that raises (injected fault or real I/O error)
   fails the *round* — every session that was already waiting gets the
   exception (their commits are reported as errors, the safe direction:
   the bytes may still become durable later, and an un-acknowledged
   statement is allowed to survive recovery).  Sessions that arrive
   after the failure retry with a fresh fsync.  Rounds are numbered by
   [epoch]; a waiter raises only for failures from rounds that finished
   after it arrived. *)

type t = {
  store : Sqlgraph.Wal.t;
  writer : Mutex.t;
  mu : Mutex.t;
  cond : Condition.t;
  mutable synced_upto : int; (* log bytes covered by a finished fsync *)
  mutable leader_active : bool;
  mutable waiting : int; (* sessions inside wait_durable (leader included) *)
  mutable epoch : int; (* finished rounds *)
  mutable failed : (int * exn) option; (* epoch of the failed round *)
  mutable groups : int; (* fsync rounds completed successfully *)
  mutable grouped_commits : int; (* sessions acknowledged across them *)
  observe_group : int -> unit; (* histogram callback (scheduler registry) *)
  mutable ship : (from:int -> upto:int -> unit) option;
      (* replication hook: after a successful fsync and *before* the
         waiting commits are acknowledged, the leader hands the newly
         durable byte range to the replication hub — so a replica's
         socket holds every acknowledged frame even if the primary is
         kill -9'd the instant after the ack (semi-synchronous
         shipping).  The hook must swallow per-replica send failures:
         a dead replica drops out of the set, it never fails a commit. *)
}

let create ~writer ~store ~observe_group =
  Sqlgraph.Wal.set_deferred_sync store true;
  {
    store;
    writer;
    mu = Mutex.create ();
    cond = Condition.create ();
    synced_upto = Sqlgraph.Wal.logical_end store;
    leader_active = false;
    waiting = 0;
    epoch = 0;
    failed = None;
    groups = 0;
    grouped_commits = 0;
    observe_group;
    ship = None;
  }

let set_ship t f = t.ship <- f

let stats t =
  Mutex.lock t.mu;
  let r = (t.groups, t.grouped_commits) in
  Mutex.unlock t.mu;
  r

let wait_durable t target =
  Mutex.lock t.mu;
  let entry_epoch = t.epoch in
  t.waiting <- t.waiting + 1;
  let finish () =
    t.waiting <- t.waiting - 1;
    Mutex.unlock t.mu
  in
  let rec loop () =
    if t.synced_upto >= target then finish ()
    else
      match t.failed with
      | Some (e, exn) when e > entry_epoch ->
        finish ();
        raise exn
      | _ ->
        if t.leader_active then begin
          Condition.wait t.cond t.mu;
          loop ()
        end
        else begin
          t.leader_active <- true;
          (* everyone waiting right now appended before this flush, so
             they are exactly the commits this fsync will acknowledge *)
          let group = t.waiting in
          let shipped_from = t.synced_upto in
          Mutex.unlock t.mu;
          let result =
            match
              Mutex.lock t.writer;
              let r =
                try
                  Sqlgraph.Wal.flush_now t.store;
                  Ok (Sqlgraph.Wal.logical_end t.store)
                with exn -> Error exn
              in
              Mutex.unlock t.writer;
              r
            with
            | Ok upto -> (
              try
                Sqlgraph.Wal.fsync_now t.store;
                Ok upto
              with exn -> Error exn)
            | Error _ as e -> e
          in
          (* ship-before-ack: the durable range reaches the replicas'
             sockets before any waiter is woken (see [ship] above) *)
          (match (result, t.ship) with
          | Ok upto, Some ship when upto > shipped_from -> (
            try ship ~from:shipped_from ~upto with _ -> ())
          | _ -> ());
          Mutex.lock t.mu;
          t.leader_active <- false;
          t.epoch <- t.epoch + 1;
          (match result with
          | Ok upto ->
            if upto > t.synced_upto then t.synced_upto <- upto;
            t.groups <- t.groups + 1;
            t.grouped_commits <- t.grouped_commits + group;
            t.observe_group group
          | Error exn -> t.failed <- Some (t.epoch, exn));
          Condition.broadcast t.cond;
          loop ()
        end
  in
  loop ()
