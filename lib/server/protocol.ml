(* Wire format of the multi-session server (DESIGN.md §12).

   Requests: one SQL statement per newline-terminated line (a trailing
   ';' is tolerated and stripped), or the verb QUIT.  Statements cannot
   span lines — SQL has no mandatory newlines, and one-line framing is
   what lets a session resynchronize after garbage bytes.

   Responses: one or more lines, the last of which always starts with a
   terminal verb (OK / ERR / BYE), so a client reads until it sees one:

     HELLO sqlgraph 1 sid=<n> snapshot=<v>      connection greeting
     ROW <cell>\t<cell>...                      one result row
     OK <verb> [n] [rows=<n>] snapshot=<v>      statement succeeded
     ERR <category> <message>                   statement failed
     BYE <reason>                               server is closing the session

   Cells and messages are escaped (\\, \t, \n, \r) so every response is
   exactly one line.  ERR categories mirror Error.t ("parse", "bind",
   "runtime", "resource:<kind>", "io", "internal") plus the server's own
   "protocol" (framing violations), "busy" (admission control /
   load-shed; the message begins with retry_ms=<n>) and "shutdown". *)

let version = 1

let escape s =
  let n = String.length s in
  let b = Buffer.create (n + 8) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '\t' -> Buffer.add_string b "\\t"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let unescape s =
  let n = String.length s in
  let b = Buffer.create n in
  let i = ref 0 in
  while !i < n do
    (match s.[!i] with
    | '\\' when !i + 1 < n ->
      incr i;
      Buffer.add_char b
        (match s.[!i] with
        | 't' -> '\t'
        | 'n' -> '\n'
        | 'r' -> '\r'
        | c -> c)
    | c -> Buffer.add_char b c);
    incr i
  done;
  Buffer.contents b

let hello ~sid ~snapshot =
  Printf.sprintf "HELLO sqlgraph %d sid=%d snapshot=%d" version sid snapshot

let bye reason = "BYE " ^ escape reason

let row cells =
  "ROW " ^ String.concat "\t" (List.map (fun c -> escape (Storage.Value.to_display c)) cells)

let row_text line = "ROW " ^ escape line

let error_category (e : Sqlgraph.Error.t) =
  match e with
  | Sqlgraph.Error.Parse_error _ -> "parse"
  | Sqlgraph.Error.Bind_error _ -> "bind"
  | Sqlgraph.Error.Runtime_error _ -> "runtime"
  | Sqlgraph.Error.Resource_error { kind; _ } ->
    "resource:" ^ Sqlgraph.Error.resource_kind_name kind
  | Sqlgraph.Error.Io_error _ -> "io"
  | Sqlgraph.Error.Internal_error _ -> "internal"

let err e =
  Printf.sprintf "ERR %s %s" (error_category e)
    (escape (Sqlgraph.Error.to_string e))

let err_protocol msg = "ERR protocol " ^ escape msg
let err_busy ~retry_ms msg = Printf.sprintf "ERR busy retry_ms=%d %s" retry_ms (escape msg)

(* Render one successful outcome as its response lines (ROW lines plus
   the terminal OK).  [snapshot] is the session's table-version-vector
   sequence number — the fuzzer asserts it never decreases per session.
   [qid] is the statement's query id (<fingerprint-hex>:<seq>, sequence
   monotone per session): echoed on the OK line so a client-side trace
   joins against the server's sqlgraph_stat_statements /
   sqlgraph_stat_sessions rows. *)
let ok_outcome ?qid ~snapshot (o : Sqlgraph.Db.exec_outcome) =
  let q = match qid with None -> "" | Some q -> " qid=" ^ q in
  let fin verb = [ Printf.sprintf "OK %s%s snapshot=%d" verb q snapshot ] in
  match o with
  | Sqlgraph.Db.Selected r ->
    let rows = List.map row (Sqlgraph.Resultset.rows r) in
    rows
    @ [
        Printf.sprintf "OK SELECT rows=%d%s snapshot=%d"
          (Sqlgraph.Resultset.nrows r) q snapshot;
      ]
  | Sqlgraph.Db.Explained text ->
    let lines =
      String.split_on_char '\n' text |> List.filter (fun l -> l <> "")
    in
    List.map row_text lines
    @ [
        Printf.sprintf "OK EXPLAIN rows=%d%s snapshot=%d" (List.length lines) q
          snapshot;
      ]
  | Sqlgraph.Db.Inserted n -> fin (Printf.sprintf "INSERT %d" n)
  | Sqlgraph.Db.Updated n -> fin (Printf.sprintf "UPDATE %d" n)
  | Sqlgraph.Db.Deleted n -> fin (Printf.sprintf "DELETE %d" n)
  | Sqlgraph.Db.Created -> fin "CREATE"
  | Sqlgraph.Db.Dropped -> fin "DROP"
  | Sqlgraph.Db.Option_set (name, v) -> fin (Printf.sprintf "SET %s %d" name v)
  | Sqlgraph.Db.Began -> fin "BEGIN"
  | Sqlgraph.Db.Committed -> fin "COMMIT"
  | Sqlgraph.Db.Rolled_back -> fin "ROLLBACK"

(* A line that terminates a response (clients read until one). *)
let is_terminal line =
  let pre p = String.length line >= String.length p && String.sub line 0 (String.length p) = p in
  pre "OK" && (String.length line = 2 || line.[2] = ' ')
  || pre "ERR " || pre "BYE"

(* Strip trailing whitespace and at most one trailing ';' from a request
   line, so clients pasting repl-style statements just work. *)
let clean_request line =
  let line = String.trim line in
  let n = String.length line in
  if n > 0 && line.[n - 1] = ';' then String.trim (String.sub line 0 (n - 1))
  else line

(* ------------------------------------------------------------------ *)
(* Replication verbs (DESIGN.md §15).

   A standby opens an ordinary connection and, instead of SQL, sends

     REPLICA gen=<g> offset=<o>

   naming the generation + log offset it already holds.  The session
   hands the fd to the replication hub, which answers with either a
   direct tail stream or a full resync:

     REPL SNAP gen=<g> files=<n>         full resync: checkpoint follows
     REPL FILE name=<esc> data=<esc>     one checkpoint file (n times)
     REPL TAIL gen=<g> from=<o>          log streaming starts at <o>
     REPL WAL off=<o> count=<k> snap=<v> data=<esc>
                                         <k> framed records at offset <o>
     REPL PING upto=<o> snap=<v>         heartbeat (idle keepalive)

   [snap] carries the primary's published snapshot version, so a
   promoted replica publishes at or above every version a client has
   already observed (cross-failover snapshot monotonicity).  Escaped
   [data] is binary-safe: {!escape} maps exactly the bytes that could
   break one-line framing.  A PROMOTE verb on a replica session fences
   the standby and turns it into a primary (OK PROMOTE gen=<g>). *)

let replica_handshake ~gen ~offset =
  Printf.sprintf "REPLICA gen=%d offset=%d" gen offset

let repl_snap ~gen ~files = Printf.sprintf "REPL SNAP gen=%d files=%d" gen files

let repl_file ~name ~data =
  Printf.sprintf "REPL FILE name=%s data=%s" (escape name) (escape data)

let repl_tail ~gen ~from = Printf.sprintf "REPL TAIL gen=%d from=%d" gen from

let repl_wal ~off ~count ~snap ~data =
  Printf.sprintf "REPL WAL off=%d count=%d snap=%d data=%s" off count snap
    (escape data)

let repl_ping ~upto ~snap = Printf.sprintf "REPL PING upto=%d snap=%d" upto snap

(* Parse [key=<int>] out of a space-separated line. *)
let int_field line key =
  let key = key ^ "=" in
  let kl = String.length key in
  let n = String.length line in
  let rec find i =
    if i + kl > n then None
    else if
      String.sub line i kl = key && (i = 0 || line.[i - 1] = ' ')
    then begin
      let j = ref (i + kl) in
      while !j < n && line.[!j] >= '0' && line.[!j] <= '9' do
        incr j
      done;
      int_of_string_opt (String.sub line (i + kl) (!j - i - kl))
    end
    else find (i + 1)
  in
  find 0

(* The [data=] field runs to end of line (escaped bytes may contain
   spaces); everything before it is fixed-format fields. *)
let data_field line =
  let key = " data=" in
  let kl = String.length key in
  let n = String.length line in
  let rec find i =
    if i + kl > n then None
    else if String.sub line i kl = key then
      Some (unescape (String.sub line (i + kl) (n - i - kl)))
    else find (i + 1)
  in
  find 0

(* [name=<esc>] — a file name: escaped, no spaces once escaped since
   checkpoint file names never contain any. *)
let name_field line =
  let key = " name=" in
  let kl = String.length key in
  let n = String.length line in
  let rec find i =
    if i + kl > n then None
    else if String.sub line i kl = key then begin
      let j = ref (i + kl) in
      while !j < n && line.[!j] <> ' ' do
        incr j
      done;
      Some (unescape (String.sub line (i + kl) (!j - i - kl)))
    end
    else find (i + 1)
  in
  find 0

let has_prefix line p =
  String.length line >= String.length p && String.sub line 0 (String.length p) = p

let parse_replica_handshake line =
  if not (has_prefix line "REPLICA") then None
  else
    match (int_field line "gen", int_field line "offset") with
    | Some gen, Some offset -> Some (gen, offset)
    | _ -> None

(* Parse the backoff hint off an [ERR busy retry_ms=<n> ...] line. *)
let retry_ms_of_line line =
  if has_prefix line "ERR busy" then int_field line "retry_ms" else None

(* Parse "qid=<fp>:<seq>" off a terminal OK line. *)
let qid_of_line line =
  let key = " qid=" in
  let kl = String.length key in
  let n = String.length line in
  let rec find i =
    if i + kl > n then None
    else if String.sub line i kl = key then begin
      let j = ref (i + kl) in
      while !j < n && line.[!j] <> ' ' do
        incr j
      done;
      Some (String.sub line (i + kl) (!j - i - kl))
    end
    else find (i + 1)
  in
  find 0

(* Parse "snapshot=<n>" off a terminal OK line ([None] on ERR/BYE). *)
let snapshot_of_line line =
  let key = "snapshot=" in
  let kl = String.length key in
  let n = String.length line in
  let rec find i =
    if i + kl > n then None
    else if String.sub line i kl = key then begin
      let j = ref (i + kl) in
      while !j < n && line.[!j] >= '0' && line.[!j] <= '9' do
        incr j
      done;
      int_of_string_opt (String.sub line (i + kl) (!j - i - kl))
    end
    else find (i + 1)
  in
  find 0
