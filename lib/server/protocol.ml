(* Wire format of the multi-session server (DESIGN.md §12).

   Requests: one SQL statement per newline-terminated line (a trailing
   ';' is tolerated and stripped), or the verb QUIT.  Statements cannot
   span lines — SQL has no mandatory newlines, and one-line framing is
   what lets a session resynchronize after garbage bytes.

   Responses: one or more lines, the last of which always starts with a
   terminal verb (OK / ERR / BYE), so a client reads until it sees one:

     HELLO sqlgraph 1 sid=<n> snapshot=<v>      connection greeting
     ROW <cell>\t<cell>...                      one result row
     OK <verb> [n] [rows=<n>] snapshot=<v>      statement succeeded
     ERR <category> <message>                   statement failed
     BYE <reason>                               server is closing the session

   Cells and messages are escaped (\\, \t, \n, \r) so every response is
   exactly one line.  ERR categories mirror Error.t ("parse", "bind",
   "runtime", "resource:<kind>", "io", "internal") plus the server's own
   "protocol" (framing violations), "busy" (admission control /
   load-shed; the message begins with retry_ms=<n>) and "shutdown". *)

let version = 1

let escape s =
  let n = String.length s in
  let b = Buffer.create (n + 8) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '\t' -> Buffer.add_string b "\\t"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let unescape s =
  let n = String.length s in
  let b = Buffer.create n in
  let i = ref 0 in
  while !i < n do
    (match s.[!i] with
    | '\\' when !i + 1 < n ->
      incr i;
      Buffer.add_char b
        (match s.[!i] with
        | 't' -> '\t'
        | 'n' -> '\n'
        | 'r' -> '\r'
        | c -> c)
    | c -> Buffer.add_char b c);
    incr i
  done;
  Buffer.contents b

let hello ~sid ~snapshot =
  Printf.sprintf "HELLO sqlgraph %d sid=%d snapshot=%d" version sid snapshot

let bye reason = "BYE " ^ escape reason

let row cells =
  "ROW " ^ String.concat "\t" (List.map (fun c -> escape (Storage.Value.to_display c)) cells)

let row_text line = "ROW " ^ escape line

let error_category (e : Sqlgraph.Error.t) =
  match e with
  | Sqlgraph.Error.Parse_error _ -> "parse"
  | Sqlgraph.Error.Bind_error _ -> "bind"
  | Sqlgraph.Error.Runtime_error _ -> "runtime"
  | Sqlgraph.Error.Resource_error { kind; _ } ->
    "resource:" ^ Sqlgraph.Error.resource_kind_name kind
  | Sqlgraph.Error.Io_error _ -> "io"
  | Sqlgraph.Error.Internal_error _ -> "internal"

let err e =
  Printf.sprintf "ERR %s %s" (error_category e)
    (escape (Sqlgraph.Error.to_string e))

let err_protocol msg = "ERR protocol " ^ escape msg
let err_busy ~retry_ms msg = Printf.sprintf "ERR busy retry_ms=%d %s" retry_ms (escape msg)

(* Render one successful outcome as its response lines (ROW lines plus
   the terminal OK).  [snapshot] is the session's table-version-vector
   sequence number — the fuzzer asserts it never decreases per session.
   [qid] is the statement's query id (<fingerprint-hex>:<seq>, sequence
   monotone per session): echoed on the OK line so a client-side trace
   joins against the server's sqlgraph_stat_statements /
   sqlgraph_stat_sessions rows. *)
let ok_outcome ?qid ~snapshot (o : Sqlgraph.Db.exec_outcome) =
  let q = match qid with None -> "" | Some q -> " qid=" ^ q in
  let fin verb = [ Printf.sprintf "OK %s%s snapshot=%d" verb q snapshot ] in
  match o with
  | Sqlgraph.Db.Selected r ->
    let rows = List.map row (Sqlgraph.Resultset.rows r) in
    rows
    @ [
        Printf.sprintf "OK SELECT rows=%d%s snapshot=%d"
          (Sqlgraph.Resultset.nrows r) q snapshot;
      ]
  | Sqlgraph.Db.Explained text ->
    let lines =
      String.split_on_char '\n' text |> List.filter (fun l -> l <> "")
    in
    List.map row_text lines
    @ [
        Printf.sprintf "OK EXPLAIN rows=%d%s snapshot=%d" (List.length lines) q
          snapshot;
      ]
  | Sqlgraph.Db.Inserted n -> fin (Printf.sprintf "INSERT %d" n)
  | Sqlgraph.Db.Updated n -> fin (Printf.sprintf "UPDATE %d" n)
  | Sqlgraph.Db.Deleted n -> fin (Printf.sprintf "DELETE %d" n)
  | Sqlgraph.Db.Created -> fin "CREATE"
  | Sqlgraph.Db.Dropped -> fin "DROP"
  | Sqlgraph.Db.Option_set (name, v) -> fin (Printf.sprintf "SET %s %d" name v)
  | Sqlgraph.Db.Began -> fin "BEGIN"
  | Sqlgraph.Db.Committed -> fin "COMMIT"
  | Sqlgraph.Db.Rolled_back -> fin "ROLLBACK"

(* A line that terminates a response (clients read until one). *)
let is_terminal line =
  let pre p = String.length line >= String.length p && String.sub line 0 (String.length p) = p in
  pre "OK" && (String.length line = 2 || line.[2] = ' ')
  || pre "ERR " || pre "BYE"

(* Strip trailing whitespace and at most one trailing ';' from a request
   line, so clients pasting repl-style statements just work. *)
let clean_request line =
  let line = String.trim line in
  let n = String.length line in
  if n > 0 && line.[n - 1] = ';' then String.trim (String.sub line 0 (n - 1))
  else line

(* Parse "qid=<fp>:<seq>" off a terminal OK line. *)
let qid_of_line line =
  let key = " qid=" in
  let kl = String.length key in
  let n = String.length line in
  let rec find i =
    if i + kl > n then None
    else if String.sub line i kl = key then begin
      let j = ref (i + kl) in
      while !j < n && line.[!j] <> ' ' do
        incr j
      done;
      Some (String.sub line (i + kl) (!j - i - kl))
    end
    else find (i + 1)
  in
  find 0

(* Parse "snapshot=<n>" off a terminal OK line ([None] on ERR/BYE). *)
let snapshot_of_line line =
  let key = "snapshot=" in
  let kl = String.length key in
  let n = String.length line in
  let rec find i =
    if i + kl > n then None
    else if String.sub line i kl = key then begin
      let j = ref (i + kl) in
      while !j < n && line.[!j] >= '0' && line.[!j] <= '9' do
        incr j
      done;
      int_of_string_opt (String.sub line (i + kl) (!j - i - kl))
    end
    else find (i + 1)
  in
  find 0
