(** Group commit: one shared WAL fsync acknowledges a whole batch of
    concurrent sessions' commits (the ~100x durable-throughput lever —
    see BENCH_server.json).

    Creating the batcher switches the store to deferred-sync mode; from
    then on every acknowledgement must go through {!wait_durable}. *)

type t

val create :
  writer:Mutex.t ->
  store:Sqlgraph.Wal.t ->
  observe_group:(int -> unit) ->
  t
(** [writer] is the scheduler's writer lock (taken briefly by the batch
    leader to flush); [observe_group] receives each successful batch's
    session count (the group-size histogram). *)

val wait_durable : t -> int -> unit
(** [wait_durable t target] — block until a finished fsync covers log
    offset [target] (capture it with {!Sqlgraph.Wal.logical_end} while
    still holding the writer lock).  Raises the leader's exception if
    the covering fsync round failed; the commit must then be reported
    as an error, not acknowledged. *)

val stats : t -> int * int
(** [(fsync rounds completed, commits acknowledged across them)] —
    rounds ≪ commits is group commit working. *)

val set_ship : t -> (from:int -> upto:int -> unit) option -> unit
(** Install the replication ship hook: after each successful batch
    fsync, and {e before} the batch's commits are acknowledged, the
    leader calls it with the newly durable log byte range — so every
    acknowledged frame reaches the replicas' sockets even if the
    primary dies the instant after the ack (semi-synchronous shipping).
    The hook must handle its own per-replica failures; an exception is
    swallowed and never fails the commit round. *)
