(** Wire format of the multi-session server: newline-framed requests,
    escaped single-line responses terminated by [OK] / [ERR] / [BYE].
    See the implementation header (and DESIGN.md §12) for the grammar. *)

val version : int

val escape : string -> string
(** One-line encoding: backslash-escape [\\], tab, newline, CR. *)

val unescape : string -> string

val hello : sid:int -> snapshot:int -> string
val bye : string -> string

val row : Storage.Value.t list -> string
(** [ROW] line: tab-separated escaped cell displays. *)

val row_text : string -> string
(** [ROW] line carrying one escaped text column (EXPLAIN output). *)

val err : Sqlgraph.Error.t -> string
(** [ERR <category> <message>] with category derived from the error
    constructor ("parse", "bind", "runtime", "resource:<kind>", "io",
    "internal"). *)

val err_protocol : string -> string
(** Framing violation (oversized line, bad verb): [ERR protocol ...]. *)

val err_busy : retry_ms:int -> string -> string
(** Admission-control rejection: [ERR busy retry_ms=<n> ...] — the
    client should back off and retry. *)

val ok_outcome :
  ?qid:string -> snapshot:int -> Sqlgraph.Db.exec_outcome -> string list
(** The full response for a successful statement: zero or more [ROW]
    lines plus the terminal [OK ... [qid=<fp>:<seq>] snapshot=<v>]
    line.  [qid] is the statement's query id — fingerprint hex plus a
    per-session sequence number — joining the acknowledgement to the
    server's [sqlgraph_stat_statements] / [sqlgraph_stat_sessions]
    rows. *)

val is_terminal : string -> bool
(** The line ends a response ([OK] / [ERR] / [BYE] prefixed). *)

val clean_request : string -> string
(** Trim whitespace and a trailing [';'] from a request line. *)

val snapshot_of_line : string -> int option
(** Parse [snapshot=<n>] out of a terminal line, if present. *)

val qid_of_line : string -> string option
(** Parse [qid=<fp>:<seq>] out of a terminal line, if present. *)

val retry_ms_of_line : string -> int option
(** Parse the backoff hint off an [ERR busy retry_ms=<n> ...] line;
    [None] for every other line. *)

(** {1 Replication verbs} (DESIGN.md §15)

    A standby sends [REPLICA gen=<g> offset=<o>] instead of SQL; the
    primary answers with an optional [REPL SNAP]/[REPL FILE]* full
    resync, then [REPL TAIL] and a stream of [REPL WAL] / [REPL PING]
    lines.  The escaped [data=] field is binary-safe and always last on
    its line. *)

val replica_handshake : gen:int -> offset:int -> string
val repl_snap : gen:int -> files:int -> string
val repl_file : name:string -> data:string -> string
val repl_tail : gen:int -> from:int -> string
val repl_wal : off:int -> count:int -> snap:int -> data:string -> string
val repl_ping : upto:int -> snap:int -> string

val parse_replica_handshake : string -> (int * int) option
(** [(gen, offset)] from a [REPLICA ...] line; [None] otherwise. *)

val int_field : string -> string -> int option
(** [int_field line key] — parse a space-delimited [key=<int>] field. *)

val data_field : string -> string option
(** The unescaped [data=] payload (runs to end of line). *)

val name_field : string -> string option
(** The unescaped [name=] field of a [REPL FILE] line. *)
