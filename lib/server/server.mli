(** The server front-end: listeners, the accept loop, graceful
    shutdown.  Fault sites: ["accept"] (a connection dropped at
    admission), ["shutdown_drain"] (crash between drain and the final
    checkpoint — recovery must replay the WAL). *)

type t

val create :
  ?config:Scheduler.config ->
  db:Sqlgraph.Db.t ->
  store:Sqlgraph.Wal.t option ->
  unit ->
  t
(** Wrap a database (durable when [store] is given — group commit is
    enabled on it) in a server.  Add listeners with {!listen_unix} /
    {!listen_tcp}, or hand fds in directly with {!attach}. *)

val scheduler : t -> Scheduler.t

val listen_unix : t -> string -> unit
(** Bind and serve a Unix-domain socket at [path] (an existing socket
    file is replaced; unlinked again on shutdown). *)

val listen_tcp : t -> string -> int -> unit
(** Bind and serve [host:port] ([""] = loopback; port 0 = ephemeral,
    read back with {!bound_port}). *)

val bound_port : t -> int option

val attach : t -> Unix.file_descr -> unit
(** Serve an already-connected fd (socketpair harnesses: tests, bench,
    in-process clients).  Admission control still applies — beyond the
    session cap the fd receives [ERR busy] + [BYE] and is closed. *)

val shutdown : t -> unit
(** Graceful shutdown: stop accepting, wake and drain every session
    (in-flight statements are cooperatively cancelled), flush + fsync
    the WAL, checkpoint.  Idempotent. *)
