(** One connected client: a thread running the read-execute-respond
    loop.  See the implementation header for statement routing (private
    snapshot Db for reads, writer lock + group commit for writes). *)

type t

val spawn : Scheduler.t -> sid:int -> Unix.file_descr -> t
(** Start the session thread on an admitted connection.  The session
    owns [fd] (closes it on exit) and calls [Scheduler.leave] exactly
    once. *)

val cancel : t -> unit
(** Cooperatively abort the statement in flight (if any) — called by the
    server's shutdown path so drain cannot block on a long traversal. *)

val join : t -> unit
