type entry = { mutable table : Table.t; mutable version : int }

type t = {
  tables : (string, entry) Hashtbl.t;
  virtuals : (string, unit -> Table.t) Hashtbl.t;
      (* read-only system tables (the sqlgraph_stat family), materialized fresh on
         every scan; deliberately invisible to [find]/[names] so DML,
         BEGIN snapshots, persistence and server publication never see
         them *)
}

let norm = String.lowercase_ascii

let create () =
  { tables = Hashtbl.create 16; virtuals = Hashtbl.create 8 }

let add t name table =
  let key = norm name in
  if Hashtbl.mem t.tables key then
    invalid_arg (Printf.sprintf "Catalog.add: table %S already exists" name);
  Hashtbl.replace t.tables key { table; version = 0 }

let replace t name table =
  let key = norm name in
  match Hashtbl.find_opt t.tables key with
  | Some e ->
    e.table <- table;
    e.version <- e.version + 1
  | None -> Hashtbl.replace t.tables key { table; version = 0 }

let replace_at t name table ~version =
  let key = norm name in
  match Hashtbl.find_opt t.tables key with
  | Some e ->
    e.table <- table;
    e.version <- version
  | None -> Hashtbl.replace t.tables key { table; version }

let find t name =
  Option.map (fun e -> e.table) (Hashtbl.find_opt t.tables (norm name))

let mem t name = Hashtbl.mem t.tables (norm name)

let drop t name =
  let key = norm name in
  if Hashtbl.mem t.tables key then begin
    Hashtbl.remove t.tables key;
    true
  end
  else false

let version t name =
  Option.map (fun e -> e.version) (Hashtbl.find_opt t.tables (norm name))

let touch t name =
  match Hashtbl.find_opt t.tables (norm name) with
  | Some e -> e.version <- e.version + 1
  | None -> ()

let names t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t.tables [] |> List.sort String.compare

let register_virtual t name provider =
  Hashtbl.replace t.virtuals (norm name) provider

let virtual_provider t name = Hashtbl.find_opt t.virtuals (norm name)
let is_virtual t name = Hashtbl.mem t.virtuals (norm name)

let virtual_names t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t.virtuals []
  |> List.sort String.compare
