(** The database catalog: named base tables, with a per-table version
    counter so that caches built over a table (e.g. the graph indices of
    DESIGN.md §6) can detect staleness. *)

type t

val create : unit -> t

(** [add t name table] registers a base table. Raises [Invalid_argument] if
    [name] (case-insensitive) is already bound. *)
val add : t -> string -> Table.t -> unit

(** [replace t name table] registers or overwrites, bumping the version. *)
val replace : t -> string -> Table.t -> unit

(** [replace_at t name table ~version] registers or overwrites, setting
    the version explicitly instead of bumping — a session catalog
    mirroring published tables adopts the publisher's version so that
    version-keyed caches (the shared graph-index cache) stay coherent
    across every session holding a copy of the same published table. *)
val replace_at : t -> string -> Table.t -> version:int -> unit

val find : t -> string -> Table.t option
val mem : t -> string -> bool

(** [drop t name] removes a table; [false] when absent. *)
val drop : t -> string -> bool

(** [version t name] is a counter bumped by {!replace}, {!drop} and
    {!touch}; [None] when the table does not exist. *)
val version : t -> string -> int option

(** [touch t name] marks a table as mutated in place (e.g. after INSERT). *)
val touch : t -> string -> unit

(** [names t] is all base-table names, sorted. Virtual tables are
    deliberately excluded: every consumer of [names] (BEGIN snapshots,
    {!Persist}, the server's snapshot publication) must only ever see
    real, materialized state. *)
val names : t -> string list

(** {1 Virtual (system) tables}

    A virtual table is a provider closure materialized fresh on every
    scan — the engine's introspection layer (DESIGN.md §14) registers
    the [sqlgraph_stat_*] tables here. Providers are resolved only as a
    fallback after base tables by the binder and executor; {!find},
    {!mem} and {!names} never report them, so DML, transaction
    snapshots and persistence exclude them by construction. *)

(** [register_virtual t name provider] registers (or replaces) a
    provider under [name] (case-insensitive). *)
val register_virtual : t -> string -> (unit -> Table.t) -> unit

val virtual_provider : t -> string -> (unit -> Table.t) option
val is_virtual : t -> string -> bool

(** [virtual_names t] — registered virtual-table names, sorted. *)
val virtual_names : t -> string list
