type data =
  | DInt of int array    (* also backs TDate *)
  | DFloat of float array
  | DBool of Bytes.t
  | DStr of string array
  | DBox of Value.t array (* boxed cells: backs TPath *)

type t = {
  ty : Dtype.t;
  mutable data : data;
  mutable len : int;
  nulls : Nullmask.t;
}

let data_capacity = function
  | DInt a -> Array.length a
  | DFloat a -> Array.length a
  | DBool b -> Bytes.length b
  | DStr a -> Array.length a
  | DBox a -> Array.length a

let alloc ty n =
  match ty with
  | Dtype.TInt | Dtype.TDate -> DInt (Array.make n 0)
  | Dtype.TFloat -> DFloat (Array.make n 0.)
  | Dtype.TBool -> DBool (Bytes.make n '\000')
  | Dtype.TStr -> DStr (Array.make n "")
  | Dtype.TPath -> DBox (Array.make n Value.Null)

let create ?(capacity = 16) ty =
  let capacity = max capacity 1 in
  { ty; data = alloc ty capacity; len = 0; nulls = Nullmask.create () }

let dtype t = t.ty
let length t = t.len

let grow t =
  (* a gather of zero rows leaves a zero-capacity buffer: never double 0 *)
  let cap = max 1 (data_capacity t.data) in
  let fresh = alloc t.ty (2 * cap) in
  (match t.data, fresh with
  | DInt src, DInt dst -> Array.blit src 0 dst 0 t.len
  | DFloat src, DFloat dst -> Array.blit src 0 dst 0 t.len
  | DBool src, DBool dst -> Bytes.blit src 0 dst 0 t.len
  | DStr src, DStr dst -> Array.blit src 0 dst 0 t.len
  | DBox src, DBox dst -> Array.blit src 0 dst 0 t.len
  | (DInt _ | DFloat _ | DBool _ | DStr _ | DBox _), _ -> assert false);
  t.data <- fresh

let append t v =
  if t.len = data_capacity t.data then grow t;
  let store_default () = () in
  (match v, t.data with
  | Value.Null, _ -> store_default ()
  | Value.Int x, DInt a when Dtype.equal t.ty Dtype.TInt -> a.(t.len) <- x
  | Value.Date d, DInt a when Dtype.equal t.ty Dtype.TDate -> a.(t.len) <- d
  | Value.Float x, DFloat a -> a.(t.len) <- x
  | Value.Int x, DFloat a -> a.(t.len) <- float_of_int x
  | Value.Bool b, DBool bytes ->
    Bytes.set bytes t.len (if b then '\001' else '\000')
  | Value.Str s, DStr a -> a.(t.len) <- s
  | (Value.Path _ as p), DBox a -> a.(t.len) <- p
  | ( Value.Int _ | Value.Float _ | Value.Bool _ | Value.Str _ | Value.Date _
    | Value.Path _ | Value.Tuple _ ),
    _ ->
    invalid_arg
      (Printf.sprintf "Column.append: cell %s does not fit column type %s"
         (Value.to_display v) (Dtype.name t.ty)));
  Nullmask.append t.nulls (Value.is_null v);
  t.len <- t.len + 1

let of_values ty vs =
  let t = create ~capacity:(max 1 (List.length vs)) ty in
  List.iter (append t) vs;
  t

let mask_of_bools n nulls =
  let m = Nullmask.create ~capacity:n () in
  (match nulls with
  | None ->
    for _ = 1 to n do
      Nullmask.append m false
    done
  | Some flags ->
    if Array.length flags <> n then
      invalid_arg "Column: null mask length mismatch";
    Array.iter (Nullmask.append m) flags);
  m

let of_int_array ?nulls a =
  {
    ty = Dtype.TInt;
    data = DInt (Array.copy a);
    len = Array.length a;
    nulls = mask_of_bools (Array.length a) nulls;
  }

let of_float_array ?nulls a =
  {
    ty = Dtype.TFloat;
    data = DFloat (Array.copy a);
    len = Array.length a;
    nulls = mask_of_bools (Array.length a) nulls;
  }

let of_bool_array ?nulls a =
  let bytes = Bytes.create (Array.length a) in
  Array.iteri
    (fun i b -> Bytes.set bytes i (if b then '\001' else '\000'))
    a;
  {
    ty = Dtype.TBool;
    data = DBool bytes;
    len = Array.length a;
    nulls = mask_of_bools (Array.length a) nulls;
  }

let is_null t i = Nullmask.get t.nulls i
let null_count t = Nullmask.null_count t.nulls

let check_bounds t i name =
  if i < 0 || i >= t.len then
    invalid_arg (Printf.sprintf "Column.%s: index %d out of bounds" name i)

let get t i =
  check_bounds t i "get";
  if Nullmask.get t.nulls i then Value.Null
  else
    match t.data, t.ty with
    | DInt a, Dtype.TDate -> Value.Date a.(i)
    | DInt a, _ -> Value.Int a.(i)
    | DFloat a, _ -> Value.Float a.(i)
    | DBool b, _ -> Value.Bool (Bytes.get b i <> '\000')
    | DStr a, _ -> Value.Str a.(i)
    | DBox a, _ -> a.(i)

let int_at t i =
  match t.data with
  | DInt a -> a.(i)
  | DFloat _ | DBool _ | DStr _ | DBox _ ->
    invalid_arg "Column.int_at: not an int column"

let float_at t i =
  match t.data with
  | DFloat a -> a.(i)
  | DInt a -> float_of_int a.(i)
  | DBool _ | DStr _ | DBox _ ->
    invalid_arg "Column.float_at: not a numeric column"

let str_at t i =
  match t.data with
  | DStr a -> a.(i)
  | DInt _ | DFloat _ | DBool _ | DBox _ ->
    invalid_arg "Column.str_at: not a string column"

let bool_at t i =
  match t.data with
  | DBool b -> Bytes.get b i <> '\000'
  | DInt _ | DFloat _ | DStr _ | DBox _ ->
    invalid_arg "Column.bool_at: not a bool column"

(* Gather without per-cell boxing: specialised per payload kind. *)
let take t idx =
  let m = Array.length idx in
  let bounds i =
    if i < 0 || i >= t.len then
      invalid_arg "Column.take: row index out of bounds"
  in
  Array.iter bounds idx;
  let nulls = Nullmask.create ~capacity:m () in
  for k = 0 to m - 1 do
    Nullmask.append nulls (Nullmask.get t.nulls idx.(k))
  done;
  let data =
    match t.data with
    | DInt a -> DInt (Array.map (fun i -> a.(i)) idx)
    | DFloat a -> DFloat (Array.map (fun i -> a.(i)) idx)
    | DBool b ->
      let out = Bytes.create m in
      for k = 0 to m - 1 do
        Bytes.set out k (Bytes.get b idx.(k))
      done;
      DBool out
    | DStr a -> DStr (Array.map (fun i -> a.(i)) idx)
    | DBox a -> DBox (Array.map (fun i -> a.(i)) idx)
  in
  { ty = t.ty; data; len = m; nulls }

let to_list t =
  let rec loop i acc = if i < 0 then acc else loop (i - 1) (get t i :: acc) in
  loop (t.len - 1) []

let iter f t =
  for i = 0 to t.len - 1 do
    f (get t i)
  done

(* Blit the backing store instead of round-tripping every cell through
   [get]/[append]: the server publishes a copy of each changed table on
   every commit, so this is on the write hot path. *)
let copy t =
  let data =
    match t.data with
    | DInt a -> DInt (Array.copy a)
    | DFloat a -> DFloat (Array.copy a)
    | DBool b -> DBool (Bytes.copy b)
    | DStr a -> DStr (Array.copy a)
    | DBox a -> DBox (Array.copy a)
  in
  { ty = t.ty; data; len = t.len; nulls = Nullmask.copy t.nulls }

let equal a b =
  Dtype.equal a.ty b.ty && a.len = b.len
  &&
  let rec loop i =
    i >= a.len || (Value.equal (get a i) (get b i) && loop (i + 1))
  in
  loop 0

(* Raw views for the column-at-a-time evaluator: the returned arrays are
   the backing store (length may exceed [length t]); callers must not
   mutate them and must ignore slots past [length t]. *)
let raw_int t = match t.data with DInt a -> Some a | _ -> None
let raw_float t = match t.data with DFloat a -> Some a | _ -> None
let null_flags t = Nullmask.to_bool_array t.nulls

let pp ppf t =
  Format.fprintf ppf "@[<hov 1>[%s:" (Dtype.name t.ty);
  iter (fun v -> Format.fprintf ppf "@ %a" Value.pp v) t;
  Format.fprintf ppf "]@]"
