(** Abstract syntax of the SQL dialect.

    The AST is untyped; name resolution and type checking happen in the
    binder ({!module:Relalg.Binder}). The paper's extension surfaces here as
    three constructors: {!constructor:expr.Reaches} (the reachability
    predicate of §2), {!constructor:expr.Cheapest_sum} (the shortest-path
    summary function) and {!constructor:from_item.From_unnest} (path
    flattening). *)

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Concat
  | Eq
  | Neq
  | Lt
  | Le
  | Gt
  | Ge
  | And
  | Or
[@@deriving show { with_path = false }]

type unop = Neg | Not [@@deriving show { with_path = false }]

type literal =
  | L_int of int
  | L_float of float
  | L_string of string
  | L_bool of bool
  | L_null
[@@deriving show { with_path = false }]

type order_dir = Asc | Desc [@@deriving show { with_path = false }]
type join_kind = Inner | Left_outer [@@deriving show { with_path = false }]

type setop = Union | Union_all | Intersect | Except
[@@deriving show { with_path = false }]

type expr =
  | Lit of literal
  | Param of int  (** [?] host parameter, numbered left to right from 0 *)
  | Col of string option * string  (** optional qualifier, column name *)
  | Bin of binop * expr * expr
  | Un of unop * expr
  | Cast of expr * string  (** target type by SQL name, resolved at bind *)
  | Case of (expr * expr) list * expr option
  | Func of string * expr list  (** scalar or aggregate call; [COUNT(STAR)] maps to [Func ("COUNT", [Star None])] *)
  | Star of string option  (** [*] or [q.*]; only valid in select items and COUNT *)
  | Agg_distinct of string * expr
      (** [COUNT(DISTINCT x)] and friends; the name is uppercased *)
  | Is_null of { negated : bool; arg : expr }
  | Between of { arg : expr; lo : expr; hi : expr; negated : bool }
  | In_list of { arg : expr; candidates : expr list; negated : bool }
  | In_query of { arg : expr; query : query; negated : bool }
      (** [x IN (SELECT ...)], uncorrelated *)
  | Like of { arg : expr; pattern : expr; negated : bool }
  | Exists of query
  | Scalar_subquery of query
  | Reaches of reaches
      (** [X REACHES Y OVER E [e] EDGE (S, D)] — §2 of the paper. *)
  | Cheapest_sum of { binding : string option; weight : expr }
      (** [CHEAPEST SUM(e: expr)] — §2; [binding] is the edge-table tuple
          variable [e], optional when a single REACHES is in scope. *)
  | Row of expr list
      (** a parenthesised expression tuple [(e1, e2, ...)]; only legal as
          a REACHES endpoint with composite EDGE keys (§2's
          multi-attribute node addressing) *)

and reaches = {
  src : expr;  (** X (possibly a {!constructor:expr.Row}) *)
  dst : expr;  (** Y *)
  edge : table_ref;  (** the edge table expression E *)
  edge_alias : string option;  (** the tuple variable [e] *)
  src_cols : string list;  (** S — one name, or several for composite keys *)
  dst_cols : string list;  (** D *)
}

and table_ref = Ref_table of string | Ref_subquery of query

and select_item =
  | Sel_star of string option  (** [*] or [alias.*] *)
  | Sel_expr of expr * alias
      (** an expression with its alias; [Alias_pair] is the paper's
          [AS (cost, path)] two-identifier form for CHEAPEST SUM *)

and alias = Alias_none | Alias_name of string | Alias_pair of string * string

and from_item =
  | From_table of string * string option  (** table name, alias *)
  | From_subquery of query * string  (** derived table, mandatory alias *)
  | From_unnest of {
      arg : expr;  (** typically [t.path] *)
      ordinality : bool;  (** WITH ORDINALITY *)
      alias : string option;
      left_outer : bool;  (** lateral LEFT OUTER (keeps empty paths) *)
    }
  | From_join of from_item * join_kind * from_item * expr option
      (** explicit JOIN ... ON; [None] condition only for CROSS JOIN *)

and query = {
  ctes : cte list;
  distinct : bool;
  items : select_item list;
  from : from_item list;  (** comma-separated; [] for FROM-less SELECT *)
  where : expr option;
  group_by : expr list;
  having : expr option;
  setops : (setop * query) list;
      (** compound query tail, left-associative; the branch queries carry
          no CTEs, set operations, ORDER BY or LIMIT of their own *)
  order_by : (expr * order_dir) list;  (** applies to the whole compound *)
  limit : int option;
  offset : int option;
}

and cte = {
  cte_name : string;
  cte_cols : string list option;
  cte_query : query;
  cte_recursive : bool;
      (** declared under WITH RECURSIVE and self-referencing: the query
          must be [base UNION [ALL] step] with [step] referring to the
          CTE's own name *)
}
[@@deriving show { with_path = false }]

type column_def = { col_name : string; col_type : string }
[@@deriving show { with_path = false }]

type insert_source =
  | Insert_values of expr list list
  | Insert_query of query
[@@deriving show { with_path = false }]

type stmt =
  | Create_table of string * column_def list
  | Create_table_as of string * query
  | Drop_table of string
  | Insert of {
      table : string;
      columns : string list option;
      source : insert_source;
    }
  | Update of {
      table : string;
      assignments : (string * expr) list;
      where : expr option;
    }
  | Delete of { table : string; where : expr option }
  | Select of query
  | Begin_txn
  | Commit_txn
  | Rollback_txn
  | Explain of { query : query; analyze : bool }
      (** [EXPLAIN] renders the plan; [EXPLAIN ANALYZE] also runs it and
          reports per-operator output rows and wall time *)
  | Set_option of { name : string; value : int }
      (** [SET name = n] — session options (e.g. [SET parallelism = 4],
          [SET slow_query_ms = 250]); the name is stored lowercased and
          validated by the session layer, so new options need no grammar
          change *)
[@@deriving show { with_path = false }]

(** [empty_query] — a [SELECT] skeleton to build on. *)
let empty_query =
  {
    ctes = [];
    distinct = false;
    items = [];
    from = [];
    where = None;
    group_by = [];
    having = None;
    setops = [];
    order_by = [];
    limit = None;
    offset = None;
  }

(** [fold_expr f acc e] — bottom-up fold over an expression tree, not
    descending into subqueries. *)
let rec fold_expr f acc e =
  let acc =
    match e with
    | Lit _ | Param _ | Col _ | Star _ | Exists _ | Scalar_subquery _ -> acc
    | Bin (_, a, b) -> fold_expr f (fold_expr f acc a) b
    | Un (_, a) | Cast (a, _) -> fold_expr f acc a
    | Case (arms, default) ->
      let acc =
        List.fold_left
          (fun acc (c, v) -> fold_expr f (fold_expr f acc c) v)
          acc arms
      in
      Option.fold ~none:acc ~some:(fold_expr f acc) default
    | Func (_, args) -> List.fold_left (fold_expr f) acc args
    | Agg_distinct (_, arg) -> fold_expr f acc arg
    | Is_null { arg; _ } -> fold_expr f acc arg
    | Between { arg; lo; hi; _ } ->
      fold_expr f (fold_expr f (fold_expr f acc arg) lo) hi
    | In_list { arg; candidates; _ } ->
      List.fold_left (fold_expr f) (fold_expr f acc arg) candidates
    | In_query { arg; _ } -> fold_expr f acc arg
    | Like { arg; pattern; _ } -> fold_expr f (fold_expr f acc arg) pattern
    | Reaches r -> fold_expr f (fold_expr f acc r.src) r.dst
    | Cheapest_sum { weight; _ } -> fold_expr f acc weight
    | Row es -> List.fold_left (fold_expr f) acc es
  in
  f acc e

(** [collect_reaches e] — every {!constructor:expr.Reaches} node in [e], in
    syntactic order. *)
let collect_reaches e =
  List.rev
    (fold_expr (fun acc e -> match e with Reaches r -> r :: acc | _ -> acc) [] e)

(** [contains_cheapest_sum e]. *)
let contains_cheapest_sum e =
  fold_expr (fun acc e -> acc || match e with Cheapest_sum _ -> true | _ -> false)
    false e
