exception Parse_error of string * int * int

type state = {
  toks : Lexer.positioned array;
  mutable pos : int;
  mutable params : int; (* next host-parameter index *)
}

let current st = st.toks.(st.pos)
let peek st = (current st).tok

let peek2 st =
  if st.pos + 1 < Array.length st.toks then st.toks.(st.pos + 1).tok
  else Token.EOF

let advance st = if st.pos < Array.length st.toks - 1 then st.pos <- st.pos + 1

let error st msg =
  let { Lexer.tok; line; col } = current st in
  raise
    (Parse_error
       (Printf.sprintf "%s (found %s)" msg (Token.to_string tok), line, col))

let expect st tok =
  if Token.equal (peek st) tok then advance st
  else error st (Printf.sprintf "expected %s" (Token.to_string tok))

let accept st tok =
  if Token.equal (peek st) tok then begin
    advance st;
    true
  end
  else false

let is_kw st name =
  match peek st with Token.KEYWORD k -> String.equal k name | _ -> false

let accept_kw st name =
  if is_kw st name then begin
    advance st;
    true
  end
  else false

let expect_kw st name =
  if not (accept_kw st name) then error st (Printf.sprintf "expected %s" name)

(* Identifiers: bare or quoted. *)
let expect_ident st =
  match peek st with
  | Token.IDENT s | Token.QIDENT s ->
    advance st;
    s
  | _ -> error st "expected an identifier"

let accept_ident st =
  match peek st with
  | Token.IDENT s | Token.QIDENT s ->
    advance st;
    Some s
  | _ -> None

let expect_int st =
  match peek st with
  | Token.INT i ->
    advance st;
    i
  | _ -> error st "expected an integer literal"

(* SET accepts a signed value so range validation happens in one place
   (the session layer), with a proper error instead of a parse error. *)
let expect_signed_int st =
  match peek st with
  | Token.MINUS ->
    advance st;
    -expect_int st
  | _ -> expect_int st

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

let starts_query st =
  match peek st with
  | Token.KEYWORD ("SELECT" | "WITH") -> true
  | _ -> false

let rec parse_expr_prec st = parse_or st

and parse_or st =
  let lhs = parse_and st in
  if accept_kw st "OR" then Ast.Bin (Ast.Or, lhs, parse_or st) else lhs

and parse_and st =
  let lhs = parse_not st in
  if accept_kw st "AND" then Ast.Bin (Ast.And, lhs, parse_and st) else lhs

and parse_not st =
  if accept_kw st "NOT" then Ast.Un (Ast.Not, parse_not st)
  else parse_predicate st

(* Comparisons, IS NULL, BETWEEN, IN, LIKE and the REACHES predicate all
   live at the same level, below NOT and above additive arithmetic. *)
and parse_predicate st =
  let lhs = parse_additive st in
  let comparison op =
    advance st;
    Ast.Bin (op, lhs, parse_additive st)
  in
  match peek st with
  | Token.EQ -> comparison Ast.Eq
  | Token.NEQ -> comparison Ast.Neq
  | Token.LT -> comparison Ast.Lt
  | Token.LE -> comparison Ast.Le
  | Token.GT -> comparison Ast.Gt
  | Token.GE -> comparison Ast.Ge
  | Token.KEYWORD "IS" ->
    advance st;
    let negated = accept_kw st "NOT" in
    expect_kw st "NULL";
    Ast.Is_null { negated; arg = lhs }
  | Token.KEYWORD "BETWEEN" ->
    advance st;
    let lo = parse_additive st in
    expect_kw st "AND";
    let hi = parse_additive st in
    Ast.Between { arg = lhs; lo; hi; negated = false }
  | Token.KEYWORD "LIKE" ->
    advance st;
    Ast.Like { arg = lhs; pattern = parse_additive st; negated = false }
  | Token.KEYWORD "IN" ->
    advance st;
    parse_in st lhs ~negated:false
  | Token.KEYWORD "NOT" -> (
    (* x NOT BETWEEN / NOT LIKE / NOT IN *)
    match peek2 st with
    | Token.KEYWORD "BETWEEN" ->
      advance st;
      advance st;
      let lo = parse_additive st in
      expect_kw st "AND";
      let hi = parse_additive st in
      Ast.Between { arg = lhs; lo; hi; negated = true }
    | Token.KEYWORD "LIKE" ->
      advance st;
      advance st;
      Ast.Like { arg = lhs; pattern = parse_additive st; negated = true }
    | Token.KEYWORD "IN" ->
      advance st;
      advance st;
      parse_in st lhs ~negated:true
    | _ -> lhs)
  | Token.KEYWORD "REACHES" ->
    advance st;
    parse_reaches st lhs
  | _ -> lhs

and parse_in st lhs ~negated =
  expect st Token.LPAREN;
  if starts_query st then begin
    let q = parse_query_body st in
    expect st Token.RPAREN;
    Ast.In_query { arg = lhs; query = q; negated }
  end
  else begin
    let rec items acc =
      let e = parse_expr_prec st in
      if accept st Token.COMMA then items (e :: acc) else List.rev (e :: acc)
    in
    let candidates = items [] in
    expect st Token.RPAREN;
    Ast.In_list { arg = lhs; candidates; negated }
  end

(* X REACHES Y OVER E [e] EDGE (S, D) *)
and parse_reaches st src =
  let dst = parse_additive st in
  expect_kw st "OVER";
  let edge =
    if accept st Token.LPAREN then begin
      let q = parse_query_body st in
      expect st Token.RPAREN;
      Ast.Ref_subquery q
    end
    else Ast.Ref_table (expect_ident st)
  in
  let edge_alias = accept_ident st in
  expect_kw st "EDGE";
  expect st Token.LPAREN;
  let ident_list () =
    let rec loop acc =
      let c = expect_ident st in
      if accept st Token.COMMA then loop (c :: acc) else List.rev (c :: acc)
    in
    loop []
  in
  let src_cols, dst_cols =
    if accept st Token.LPAREN then begin
      (* EDGE ((s1, s2), (d1, d2)) — composite keys *)
      let s = ident_list () in
      expect st Token.RPAREN;
      expect st Token.COMMA;
      expect st Token.LPAREN;
      let d = ident_list () in
      expect st Token.RPAREN;
      (s, d)
    end
    else begin
      let s = expect_ident st in
      expect st Token.COMMA;
      let d = expect_ident st in
      ([ s ], [ d ])
    end
  in
  expect st Token.RPAREN;
  Ast.Reaches { src; dst; edge; edge_alias; src_cols; dst_cols }

and parse_additive st =
  let rec loop lhs =
    match peek st with
    | Token.PLUS ->
      advance st;
      loop (Ast.Bin (Ast.Add, lhs, parse_multiplicative st))
    | Token.MINUS ->
      advance st;
      loop (Ast.Bin (Ast.Sub, lhs, parse_multiplicative st))
    | Token.CONCAT ->
      advance st;
      loop (Ast.Bin (Ast.Concat, lhs, parse_multiplicative st))
    | _ -> lhs
  in
  loop (parse_multiplicative st)

and parse_multiplicative st =
  let rec loop lhs =
    match peek st with
    | Token.STAR ->
      advance st;
      loop (Ast.Bin (Ast.Mul, lhs, parse_unary st))
    | Token.SLASH ->
      advance st;
      loop (Ast.Bin (Ast.Div, lhs, parse_unary st))
    | Token.PERCENT ->
      advance st;
      loop (Ast.Bin (Ast.Mod, lhs, parse_unary st))
    | _ -> lhs
  in
  loop (parse_unary st)

and parse_unary st =
  match peek st with
  | Token.MINUS -> (
    advance st;
    (* fold the sign into numeric literals so -1 is one literal *)
    match peek st with
    | Token.INT i ->
      advance st;
      Ast.Lit (Ast.L_int (-i))
    | Token.FLOAT f ->
      advance st;
      Ast.Lit (Ast.L_float (-.f))
    | _ -> Ast.Un (Ast.Neg, parse_unary st))
  | Token.PLUS ->
    advance st;
    parse_unary st
  | _ -> parse_primary st

and parse_primary st =
  match peek st with
  | Token.INT i ->
    advance st;
    Ast.Lit (Ast.L_int i)
  | Token.FLOAT f ->
    advance st;
    Ast.Lit (Ast.L_float f)
  | Token.STRING s ->
    advance st;
    Ast.Lit (Ast.L_string s)
  | Token.PARAM ->
    advance st;
    let i = st.params in
    st.params <- st.params + 1;
    Ast.Param i
  | Token.KEYWORD "NULL" ->
    advance st;
    Ast.Lit Ast.L_null
  | Token.KEYWORD "TRUE" ->
    advance st;
    Ast.Lit (Ast.L_bool true)
  | Token.KEYWORD "FALSE" ->
    advance st;
    Ast.Lit (Ast.L_bool false)
  | Token.KEYWORD "CAST" ->
    advance st;
    expect st Token.LPAREN;
    let arg = parse_expr_prec st in
    expect_kw st "AS";
    let ty = expect_ident st in
    expect st Token.RPAREN;
    Ast.Cast (arg, ty)
  | Token.KEYWORD "CASE" ->
    advance st;
    parse_case st
  | Token.KEYWORD "EXISTS" ->
    advance st;
    expect st Token.LPAREN;
    let q = parse_query_body st in
    expect st Token.RPAREN;
    Ast.Exists q
  | Token.KEYWORD "CHEAPEST" ->
    advance st;
    parse_cheapest_sum st
  | Token.LPAREN ->
    advance st;
    if starts_query st then begin
      let q = parse_query_body st in
      expect st Token.RPAREN;
      Ast.Scalar_subquery q
    end
    else begin
      let e = parse_expr_prec st in
      if accept st Token.COMMA then begin
        (* an expression tuple: a composite REACHES endpoint *)
        let rec more acc =
          let x = parse_expr_prec st in
          if accept st Token.COMMA then more (x :: acc) else List.rev (x :: acc)
        in
        let rest = more [] in
        expect st Token.RPAREN;
        Ast.Row (e :: rest)
      end
      else begin
        expect st Token.RPAREN;
        e
      end
    end
  | Token.IDENT _ | Token.QIDENT _ -> parse_name_or_call st
  | _ -> error st "expected an expression"

and parse_case st =
  (* simple CASE (CASE x WHEN v THEN r ...) desugars to the searched form
     with equality comparisons *)
  let operand =
    if is_kw st "WHEN" then None else Some (parse_expr_prec st)
  in
  let rec arms acc =
    if accept_kw st "WHEN" then begin
      let w = parse_expr_prec st in
      expect_kw st "THEN";
      let v = parse_expr_prec st in
      let cond =
        match operand with
        | None -> w
        | Some x -> Ast.Bin (Ast.Eq, x, w)
      in
      arms ((cond, v) :: acc)
    end
    else List.rev acc
  in
  let arms = arms [] in
  if arms = [] then error st "CASE requires at least one WHEN arm";
  let default = if accept_kw st "ELSE" then Some (parse_expr_prec st) else None in
  expect_kw st "END";
  Ast.Case (arms, default)

(* CHEAPEST SUM(e: expr) | CHEAPEST SUM(expr) — 'CHEAPEST' was consumed. *)
and parse_cheapest_sum st =
  (match accept_ident st with
  | Some s when String.uppercase_ascii s = "SUM" -> ()
  | Some _ | None -> error st "expected SUM after CHEAPEST");
  expect st Token.LPAREN;
  let binding =
    match peek st, peek2 st with
    | (Token.IDENT v | Token.QIDENT v), Token.COLON ->
      advance st;
      advance st;
      Some v
    | _ -> None
  in
  let weight = parse_expr_prec st in
  expect st Token.RPAREN;
  Ast.Cheapest_sum { binding; weight }

and parse_name_or_call st =
  let name = expect_ident st in
  match peek st with
  | Token.LPAREN ->
    advance st;
    if accept_kw st "DISTINCT" then begin
      (* aggregate over distinct values: COUNT(DISTINCT x) etc. *)
      let arg = parse_expr_prec st in
      expect st Token.RPAREN;
      Ast.Agg_distinct (String.uppercase_ascii name, arg)
    end
    else begin
      let args =
        if accept st Token.RPAREN then []
        else begin
          let args =
            (* COUNT STAR *)
            if Token.equal (peek st) Token.STAR then begin
              advance st;
              [ Ast.Star None ]
            end
            else begin
              let rec loop acc =
                let e = parse_expr_prec st in
                if accept st Token.COMMA then loop (e :: acc)
                else List.rev (e :: acc)
              in
              loop []
            end
          in
          expect st Token.RPAREN;
          args
        end
      in
      Ast.Func (String.uppercase_ascii name, args)
    end
  | Token.DOT -> (
    advance st;
    match peek st with
    | Token.STAR ->
      advance st;
      Ast.Star (Some name)
    | _ ->
      let col = expect_ident st in
      Ast.Col (Some name, col))
  | _ -> Ast.Col (None, name)

(* ------------------------------------------------------------------ *)
(* Queries                                                             *)
(* ------------------------------------------------------------------ *)

(* A select core: SELECT ... [FROM/WHERE/GROUP BY/HAVING], without CTEs,
   set operations, ORDER BY or LIMIT. *)
and parse_select_core st =
  expect_kw st "SELECT";
  let distinct =
    if accept_kw st "DISTINCT" then true
    else begin
      ignore (accept_kw st "ALL");
      false
    end
  in
  let items = parse_select_items st in
  let from = if accept_kw st "FROM" then parse_from_list st else [] in
  let where = if accept_kw st "WHERE" then Some (parse_expr_prec st) else None in
  let group_by =
    if accept_kw st "GROUP" then begin
      expect_kw st "BY";
      let rec loop acc =
        let e = parse_expr_prec st in
        if accept st Token.COMMA then loop (e :: acc) else List.rev (e :: acc)
      in
      loop []
    end
    else []
  in
  let having = if accept_kw st "HAVING" then Some (parse_expr_prec st) else None in
  {
    Ast.ctes = [];
    distinct;
    items;
    from;
    where;
    group_by;
    having;
    setops = [];
    order_by = [];
    limit = None;
    offset = None;
  }

and parse_query_body st =
  let ctes = if is_kw st "WITH" then parse_ctes st else [] in
  let head = parse_select_core st in
  (* compound tail: UNION [ALL] / INTERSECT / EXCEPT, left-associative *)
  let rec setops acc =
    if accept_kw st "UNION" then
      let op = if accept_kw st "ALL" then Ast.Union_all else Ast.Union in
      setops ((op, parse_select_core st) :: acc)
    else if accept_kw st "INTERSECT" then
      setops ((Ast.Intersect, parse_select_core st) :: acc)
    else if accept_kw st "EXCEPT" then
      setops ((Ast.Except, parse_select_core st) :: acc)
    else List.rev acc
  in
  let setops = setops [] in
  let order_by =
    if accept_kw st "ORDER" then begin
      expect_kw st "BY";
      let rec loop acc =
        let e = parse_expr_prec st in
        let dir =
          if accept_kw st "DESC" then Ast.Desc
          else begin
            ignore (accept_kw st "ASC");
            Ast.Asc
          end
        in
        if accept st Token.COMMA then loop ((e, dir) :: acc)
        else List.rev ((e, dir) :: acc)
      in
      loop []
    end
    else []
  in
  let limit = if accept_kw st "LIMIT" then Some (expect_int st) else None in
  let offset = if accept_kw st "OFFSET" then Some (expect_int st) else None in
  { head with Ast.ctes; setops; order_by; limit; offset }

and parse_ctes st =
  expect_kw st "WITH";
  (* RECURSIVE is not reserved; match its spelling *)
  let recursive =
    match peek st, peek2 st with
    | (Token.IDENT w | Token.QIDENT w), (Token.IDENT _ | Token.QIDENT _)
      when String.uppercase_ascii w = "RECURSIVE" ->
      advance st;
      true
    | _ -> false
  in
  let rec loop acc =
    let cte_name = expect_ident st in
    let cte_cols =
      if accept st Token.LPAREN then begin
        let rec cols acc =
          let c = expect_ident st in
          if accept st Token.COMMA then cols (c :: acc) else List.rev (c :: acc)
        in
        let cols = cols [] in
        expect st Token.RPAREN;
        Some cols
      end
      else None
    in
    expect_kw st "AS";
    expect st Token.LPAREN;
    let cte_query = parse_query_body st in
    expect st Token.RPAREN;
    let cte = { Ast.cte_name; cte_cols; cte_query; cte_recursive = recursive } in
    if accept st Token.COMMA then loop (cte :: acc) else List.rev (cte :: acc)
  in
  loop []

and parse_select_items st =
  let parse_item () =
    match peek st with
    | Token.STAR ->
      advance st;
      Ast.Sel_star None
    | (Token.IDENT q | Token.QIDENT q)
      when Token.equal (peek2 st) Token.DOT
           && Token.equal
                (if st.pos + 2 < Array.length st.toks then
                   st.toks.(st.pos + 2).tok
                 else Token.EOF)
                Token.STAR ->
      advance st;
      advance st;
      advance st;
      Ast.Sel_star (Some q)
    | _ ->
      let e = parse_expr_prec st in
      let alias =
        if accept_kw st "AS" then
          if accept st Token.LPAREN then begin
            let a = expect_ident st in
            expect st Token.COMMA;
            let b = expect_ident st in
            expect st Token.RPAREN;
            Ast.Alias_pair (a, b)
          end
          else Ast.Alias_name (expect_ident st)
        else
          match peek st with
          | Token.IDENT a | Token.QIDENT a ->
            advance st;
            Ast.Alias_name a
          | _ -> Ast.Alias_none
      in
      Ast.Sel_expr (e, alias)
  in
  let rec loop acc =
    let item = parse_item () in
    if accept st Token.COMMA then loop (item :: acc) else List.rev (item :: acc)
  in
  loop []

and parse_from_list st =
  let rec loop acc =
    let item = parse_join_chain st in
    if accept st Token.COMMA then loop (item :: acc) else List.rev (item :: acc)
  in
  loop []

and parse_join_chain st =
  let lhs = parse_from_atom st in
  let rec loop lhs =
    if accept_kw st "CROSS" then begin
      expect_kw st "JOIN";
      let rhs = parse_from_atom st in
      loop (Ast.From_join (lhs, Ast.Inner, rhs, None))
    end
    else if accept_kw st "LEFT" then begin
      ignore (accept_kw st "OUTER");
      expect_kw st "JOIN";
      let rhs = parse_from_atom st in
      let cond = if accept_kw st "ON" then Some (parse_expr_prec st) else None in
      loop (Ast.From_join (lhs, Ast.Left_outer, rhs, cond))
    end
    else if accept_kw st "INNER" || is_kw st "JOIN" then begin
      expect_kw st "JOIN";
      let rhs = parse_from_atom st in
      let cond = if accept_kw st "ON" then Some (parse_expr_prec st) else None in
      loop (Ast.From_join (lhs, Ast.Inner, rhs, cond))
    end
    else lhs
  in
  loop lhs

and parse_from_atom st =
  if accept_kw st "LATERAL" then parse_from_atom st (* LATERAL is implicit *)
  else if is_kw st "UNNEST" then begin
    advance st;
    expect st Token.LPAREN;
    let arg = parse_expr_prec st in
    expect st Token.RPAREN;
    let ordinality =
      (* ORDINALITY is not reserved (it may name columns), so match the
         identifier's spelling here *)
      if is_kw st "WITH" then begin
        advance st;
        (match accept_ident st with
        | Some w when String.uppercase_ascii w = "ORDINALITY" -> ()
        | Some _ | None -> error st "expected ORDINALITY after WITH");
        true
      end
      else false
    in
    let alias =
      if accept_kw st "AS" then Some (expect_ident st) else accept_ident st
    in
    Ast.From_unnest { arg; ordinality; alias; left_outer = false }
  end
  else if accept st Token.LPAREN then begin
    let q = parse_query_body st in
    expect st Token.RPAREN;
    ignore (accept_kw st "AS");
    let alias =
      match accept_ident st with
      | Some a -> a
      | None -> error st "a derived table requires an alias"
    in
    Ast.From_subquery (q, alias)
  end
  else begin
    let name = expect_ident st in
    let alias =
      if accept_kw st "AS" then Some (expect_ident st) else accept_ident st
    in
    Ast.From_table (name, alias)
  end

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

let parse_create st =
  expect_kw st "CREATE";
  expect_kw st "TABLE";
  let name = expect_ident st in
  if accept_kw st "AS" then begin
    (* CREATE TABLE name AS SELECT ... *)
    Ast.Create_table_as (name, parse_query_body st)
  end
  else begin
  expect st Token.LPAREN;
  let rec cols acc =
    let col_name = expect_ident st in
    let col_type = expect_ident st in
    (* swallow unsupported column constraints: PRIMARY KEY, NOT NULL, ... *)
    let rec skip_constraints () =
      match peek st with
      | Token.IDENT _ | Token.KEYWORD "NOT" | Token.KEYWORD "NULL" ->
        advance st;
        skip_constraints ()
      | _ -> ()
    in
    skip_constraints ();
    let def = { Ast.col_name; col_type } in
    if accept st Token.COMMA then cols (def :: acc) else List.rev (def :: acc)
  in
  let defs = cols [] in
  expect st Token.RPAREN;
  Ast.Create_table (name, defs)
  end

let parse_insert st =
  expect_kw st "INSERT";
  expect_kw st "INTO";
  let table = expect_ident st in
  let columns =
    if Token.equal (peek st) Token.LPAREN then begin
      advance st;
      let rec cols acc =
        let c = expect_ident st in
        if accept st Token.COMMA then cols (c :: acc) else List.rev (c :: acc)
      in
      let cols = cols [] in
      expect st Token.RPAREN;
      Some cols
    end
    else None
  in
  if starts_query st then
    Ast.Insert { table; columns; source = Ast.Insert_query (parse_query_body st) }
  else begin
    expect_kw st "VALUES";
    let rec rows acc =
      expect st Token.LPAREN;
      let rec cells acc =
        let e = parse_expr_prec st in
        if accept st Token.COMMA then cells (e :: acc) else List.rev (e :: acc)
      in
      let row = cells [] in
      expect st Token.RPAREN;
      if accept st Token.COMMA then rows (row :: acc) else List.rev (row :: acc)
    in
    Ast.Insert { table; columns; source = Ast.Insert_values (rows []) }
  end

let parse_drop st =
  expect_kw st "DROP";
  expect_kw st "TABLE";
  Ast.Drop_table (expect_ident st)

let parse_update st =
  expect_kw st "UPDATE";
  let table = expect_ident st in
  expect_kw st "SET";
  let rec assignments acc =
    let col = expect_ident st in
    expect st Token.EQ;
    let e = parse_expr_prec st in
    if accept st Token.COMMA then assignments ((col, e) :: acc)
    else List.rev ((col, e) :: acc)
  in
  let assignments = assignments [] in
  let where = if accept_kw st "WHERE" then Some (parse_expr_prec st) else None in
  Ast.Update { table; assignments; where }

let parse_delete st =
  expect_kw st "DELETE";
  expect_kw st "FROM";
  let table = expect_ident st in
  let where = if accept_kw st "WHERE" then Some (parse_expr_prec st) else None in
  Ast.Delete { table; where }

let parse_stmt_body st =
  match peek st with
  | Token.KEYWORD "CREATE" -> parse_create st
  | Token.KEYWORD "INSERT" -> parse_insert st
  | Token.KEYWORD "DROP" -> parse_drop st
  | Token.KEYWORD "UPDATE" -> parse_update st
  | Token.KEYWORD "DELETE" -> parse_delete st
  | Token.KEYWORD "BEGIN" ->
    advance st;
    (match peek st with
    | Token.IDENT w when String.uppercase_ascii w = "TRANSACTION" -> advance st
    | _ -> ());
    Ast.Begin_txn
  | Token.KEYWORD "COMMIT" ->
    advance st;
    Ast.Commit_txn
  | Token.KEYWORD "ROLLBACK" ->
    advance st;
    Ast.Rollback_txn
  | Token.KEYWORD "EXPLAIN" ->
    advance st;
    let analyze =
      match peek st with
      | Token.IDENT w when String.uppercase_ascii w = "ANALYZE" ->
        advance st;
        true
      | _ -> false
    in
    Ast.Explain { query = parse_query_body st; analyze }
  | Token.KEYWORD "SET" ->
    advance st;
    let name = expect_ident st in
    expect st Token.EQ;
    let value = expect_signed_int st in
    Ast.Set_option { name = String.lowercase_ascii name; value }
  | Token.KEYWORD ("SELECT" | "WITH") -> Ast.Select (parse_query_body st)
  | _ -> error st "expected a statement"

let make_state src =
  { toks = Array.of_list (Lexer.tokenize src); pos = 0; params = 0 }

let expect_eof st =
  ignore (accept st Token.SEMI);
  match peek st with
  | Token.EOF -> ()
  | _ -> error st "trailing input after statement"

let parse_stmt src =
  let st = make_state src in
  let stmt = parse_stmt_body st in
  expect_eof st;
  stmt

let parse_query src =
  let st = make_state src in
  let q = parse_query_body st in
  expect_eof st;
  q

let parse_script src =
  let st = make_state src in
  let rec loop acc =
    match peek st with
    | Token.EOF -> List.rev acc
    | Token.SEMI ->
      advance st;
      loop acc
    | _ ->
      let stmt = parse_stmt_body st in
      (match peek st with
      | Token.SEMI -> advance st
      | Token.EOF -> ()
      | _ -> error st "expected ';' between statements");
      loop (stmt :: acc)
  in
  loop []

let parse_expr src =
  let st = make_state src in
  let e = parse_expr_prec st in
  expect_eof st;
  e
