let binop_to_string = function
  | Ast.Add -> "+"
  | Ast.Sub -> "-"
  | Ast.Mul -> "*"
  | Ast.Div -> "/"
  | Ast.Mod -> "%"
  | Ast.Concat -> "||"
  | Ast.Eq -> "="
  | Ast.Neq -> "<>"
  | Ast.Lt -> "<"
  | Ast.Le -> "<="
  | Ast.Gt -> ">"
  | Ast.Ge -> ">="
  | Ast.And -> "AND"
  | Ast.Or -> "OR"

let escape_string s =
  String.concat "''" (String.split_on_char '\'' s)

let quote_ident s =
  let plain =
    s <> ""
    && (not (Token.is_keyword s))
    && String.for_all
         (fun c ->
           (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
           || (c >= '0' && c <= '9')
           || c = '_')
         s
    && not (s.[0] >= '0' && s.[0] <= '9')
  in
  if plain then s
  else "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""

let rec expr_to_string e =
  match e with
  | Ast.Lit (Ast.L_int i) -> string_of_int i
  | Ast.Lit (Ast.L_float f) ->
    let s = Printf.sprintf "%.17g" f in
    if String.contains s '.' || String.contains s 'e' || String.contains s 'n'
    then s
    else s ^ ".0"
  | Ast.Lit (Ast.L_string s) -> "'" ^ escape_string s ^ "'"
  | Ast.Lit (Ast.L_bool b) -> if b then "TRUE" else "FALSE"
  | Ast.Lit Ast.L_null -> "NULL"
  | Ast.Param _ -> "?"
  | Ast.Col (None, c) -> quote_ident c
  | Ast.Col (Some q, c) -> quote_ident q ^ "." ^ quote_ident c
  | Ast.Star None -> "*"
  | Ast.Star (Some q) -> quote_ident q ^ ".*"
  | Ast.Bin (op, a, b) ->
    Printf.sprintf "(%s %s %s)" (expr_to_string a) (binop_to_string op)
      (expr_to_string b)
  | Ast.Un (Ast.Neg, a) -> Printf.sprintf "(- %s)" (expr_to_string a)
  | Ast.Un (Ast.Not, a) -> Printf.sprintf "(NOT %s)" (expr_to_string a)
  | Ast.Cast (a, ty) -> Printf.sprintf "CAST(%s AS %s)" (expr_to_string a) ty
  | Ast.Case (arms, default) ->
    let arms_s =
      List.map
        (fun (c, v) ->
          Printf.sprintf "WHEN %s THEN %s" (expr_to_string c) (expr_to_string v))
        arms
    in
    let else_s =
      match default with
      | None -> ""
      | Some d -> Printf.sprintf " ELSE %s" (expr_to_string d)
    in
    Printf.sprintf "CASE %s%s END" (String.concat " " arms_s) else_s
  | Ast.Func (name, args) ->
    Printf.sprintf "%s(%s)" name (String.concat ", " (List.map expr_to_string args))
  | Ast.Is_null { negated; arg } ->
    Printf.sprintf "(%s IS %sNULL)" (expr_to_string arg)
      (if negated then "NOT " else "")
  | Ast.Between { arg; lo; hi; negated } ->
    Printf.sprintf "(%s %sBETWEEN %s AND %s)" (expr_to_string arg)
      (if negated then "NOT " else "")
      (expr_to_string lo) (expr_to_string hi)
  | Ast.Agg_distinct (name, arg) ->
    Printf.sprintf "%s(DISTINCT %s)" name (expr_to_string arg)
  | Ast.In_list { arg; candidates; negated } ->
    Printf.sprintf "(%s %sIN (%s))" (expr_to_string arg)
      (if negated then "NOT " else "")
      (String.concat ", " (List.map expr_to_string candidates))
  | Ast.In_query { arg; query; negated } ->
    Printf.sprintf "(%s %sIN (%s))" (expr_to_string arg)
      (if negated then "NOT " else "")
      (query_to_string query)
  | Ast.Like { arg; pattern; negated } ->
    Printf.sprintf "(%s %sLIKE %s)" (expr_to_string arg)
      (if negated then "NOT " else "")
      (expr_to_string pattern)
  | Ast.Exists q -> Printf.sprintf "EXISTS (%s)" (query_to_string q)
  | Ast.Scalar_subquery q -> Printf.sprintf "(%s)" (query_to_string q)
  | Ast.Reaches r ->
    let edge =
      match r.edge with
      | Ast.Ref_table t -> quote_ident t
      | Ast.Ref_subquery q -> Printf.sprintf "(%s)" (query_to_string q)
    in
    let alias =
      match r.edge_alias with None -> "" | Some a -> " " ^ quote_ident a
    in
    let key cols =
      match cols with
      | [ c ] -> quote_ident c
      | cs ->
        Printf.sprintf "(%s)" (String.concat ", " (List.map quote_ident cs))
    in
    Printf.sprintf "(%s REACHES %s OVER %s%s EDGE (%s, %s))"
      (expr_to_string r.src) (expr_to_string r.dst) edge alias
      (key r.src_cols) (key r.dst_cols)
  | Ast.Cheapest_sum { binding; weight } ->
    let b = match binding with None -> "" | Some v -> quote_ident v ^ ": " in
    Printf.sprintf "CHEAPEST SUM(%s%s)" b (expr_to_string weight)
  | Ast.Row es ->
    Printf.sprintf "(%s)" (String.concat ", " (List.map expr_to_string es))

and select_item_to_string = function
  | Ast.Sel_star None -> "*"
  | Ast.Sel_star (Some q) -> quote_ident q ^ ".*"
  | Ast.Sel_expr (e, Ast.Alias_none) -> expr_to_string e
  | Ast.Sel_expr (e, Ast.Alias_name a) ->
    Printf.sprintf "%s AS %s" (expr_to_string e) (quote_ident a)
  | Ast.Sel_expr (e, Ast.Alias_pair (a, b)) ->
    Printf.sprintf "%s AS (%s, %s)" (expr_to_string e) (quote_ident a)
      (quote_ident b)

and from_item_to_string = function
  | Ast.From_table (t, None) -> quote_ident t
  | Ast.From_table (t, Some a) -> quote_ident t ^ " " ^ quote_ident a
  | Ast.From_subquery (q, a) ->
    Printf.sprintf "(%s) AS %s" (query_to_string q) (quote_ident a)
  | Ast.From_unnest { arg; ordinality; alias; left_outer = _ } ->
    Printf.sprintf "UNNEST(%s)%s%s" (expr_to_string arg)
      (if ordinality then " WITH ORDINALITY" else "")
      (match alias with None -> "" | Some a -> " AS " ^ quote_ident a)
  | Ast.From_join (l, kind, r, cond) ->
    let kw =
      match kind, cond with
      | Ast.Inner, None -> "CROSS JOIN"
      | Ast.Inner, Some _ -> "JOIN"
      | Ast.Left_outer, _ -> "LEFT JOIN"
    in
    Printf.sprintf "%s %s %s%s" (from_item_to_string l) kw
      (from_item_to_string r)
      (match cond with
      | None -> ""
      | Some c -> " ON " ^ expr_to_string c)

and query_to_string (q : Ast.query) =
  let buf = Buffer.create 128 in
  let add = Buffer.add_string buf in
  if q.ctes <> [] then begin
    add
      (if List.exists (fun (c : Ast.cte) -> c.Ast.cte_recursive) q.ctes then
         "WITH RECURSIVE "
       else "WITH ");
    add
      (String.concat ", "
         (List.map
            (fun (c : Ast.cte) ->
              let cols =
                match c.cte_cols with
                | None -> ""
                | Some cols ->
                  Printf.sprintf " (%s)"
                    (String.concat ", " (List.map quote_ident cols))
              in
              Printf.sprintf "%s%s AS (%s)" (quote_ident c.cte_name) cols
                (query_to_string c.cte_query))
            q.ctes));
    add " "
  end;
  add "SELECT ";
  if q.distinct then add "DISTINCT ";
  add (String.concat ", " (List.map select_item_to_string q.items));
  if q.from <> [] then begin
    add " FROM ";
    add (String.concat ", " (List.map from_item_to_string q.from))
  end;
  (match q.where with
  | None -> ()
  | Some w -> add (" WHERE " ^ expr_to_string w));
  if q.group_by <> [] then begin
    add " GROUP BY ";
    add (String.concat ", " (List.map expr_to_string q.group_by))
  end;
  (match q.having with
  | None -> ()
  | Some h -> add (" HAVING " ^ expr_to_string h));
  List.iter
    (fun (op, branch) ->
      let kw =
        match op with
        | Ast.Union -> "UNION"
        | Ast.Union_all -> "UNION ALL"
        | Ast.Intersect -> "INTERSECT"
        | Ast.Except -> "EXCEPT"
      in
      add (" " ^ kw ^ " " ^ query_to_string branch))
    q.setops;
  if q.order_by <> [] then begin
    add " ORDER BY ";
    add
      (String.concat ", "
         (List.map
            (fun (e, dir) ->
              expr_to_string e
              ^ match dir with Ast.Asc -> " ASC" | Ast.Desc -> " DESC")
            q.order_by))
  end;
  (match q.limit with
  | None -> ()
  | Some n -> add (Printf.sprintf " LIMIT %d" n));
  (match q.offset with
  | None -> ()
  | Some n -> add (Printf.sprintf " OFFSET %d" n));
  Buffer.contents buf

let stmt_to_string = function
  | Ast.Select q -> query_to_string q
  | Ast.Explain { query; analyze } ->
    (if analyze then "EXPLAIN ANALYZE " else "EXPLAIN ") ^ query_to_string query
  | Ast.Update { table; assignments; where } ->
    Printf.sprintf "UPDATE %s SET %s%s" (quote_ident table)
      (String.concat ", "
         (List.map
            (fun (c, e) -> quote_ident c ^ " = " ^ expr_to_string e)
            assignments))
      (match where with
      | None -> ""
      | Some w -> " WHERE " ^ expr_to_string w)
  | Ast.Delete { table; where } ->
    Printf.sprintf "DELETE FROM %s%s" (quote_ident table)
      (match where with
      | None -> ""
      | Some w -> " WHERE " ^ expr_to_string w)
  | Ast.Create_table (name, defs) ->
    Printf.sprintf "CREATE TABLE %s (%s)" (quote_ident name)
      (String.concat ", "
         (List.map
            (fun (d : Ast.column_def) ->
              quote_ident d.col_name ^ " " ^ d.col_type)
            defs))
  | Ast.Drop_table name -> "DROP TABLE " ^ quote_ident name
  | Ast.Insert { table; columns; source } -> (
    let cols =
      match columns with
      | None -> ""
      | Some cs ->
        Printf.sprintf " (%s)" (String.concat ", " (List.map quote_ident cs))
    in
    match source with
    | Ast.Insert_values rows ->
      let row_to_string row =
        Printf.sprintf "(%s)" (String.concat ", " (List.map expr_to_string row))
      in
      Printf.sprintf "INSERT INTO %s%s VALUES %s" (quote_ident table) cols
        (String.concat ", " (List.map row_to_string rows))
    | Ast.Insert_query q ->
      Printf.sprintf "INSERT INTO %s%s %s" (quote_ident table) cols
        (query_to_string q))
  | Ast.Set_option { name; value } -> Printf.sprintf "SET %s = %d" name value
  | Ast.Begin_txn -> "BEGIN"
  | Ast.Commit_txn -> "COMMIT"
  | Ast.Rollback_txn -> "ROLLBACK"
  | Ast.Create_table_as (name, q) ->
    Printf.sprintf "CREATE TABLE %s AS %s" (quote_ident name) (query_to_string q)
