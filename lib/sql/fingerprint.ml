(* Statement fingerprints (DESIGN.md §14): a normalized statement text
   plus a stable 64-bit hash, grouping statements that differ only in
   constants, whitespace, comments or identifier case — the key of the
   sqlgraph_stat_statements system table.

   Normalization is AST-based when the statement parses: every literal
   and host parameter becomes [Param 0] (printed "?"), every identifier
   is lowercased (matching the catalog's case-insensitive name space),
   and the result is pretty-printed — which canonicalizes whitespace,
   keyword case and comments for free.  The pretty-printer's output
   re-parses to the same stripped AST, so normalization is idempotent.
   LIMIT/OFFSET counts are part of the statement shape (the AST stores
   them as plain integers, and a bounded and an unbounded scan really
   are different workloads).

   Text that does not parse (fingerprints are also taken for statements
   that later fail) falls back to a token-level pass: literals become
   "?", identifiers are lowercased, tokens are joined with single
   spaces.  Both passes are idempotent because "?" lexes back to a
   parameter token. *)

let lower = String.lowercase_ascii

let rec strip_expr (e : Ast.expr) : Ast.expr =
  match e with
  | Ast.Lit _ | Ast.Param _ -> Ast.Param 0
  | Ast.Col (q, c) -> Ast.Col (Option.map lower q, lower c)
  | Ast.Star q -> Ast.Star (Option.map lower q)
  | Ast.Bin (op, a, b) -> Ast.Bin (op, strip_expr a, strip_expr b)
  | Ast.Un (op, a) -> Ast.Un (op, strip_expr a)
  | Ast.Cast (a, ty) -> Ast.Cast (strip_expr a, lower ty)
  | Ast.Case (arms, default) ->
    Ast.Case
      ( List.map (fun (c, v) -> (strip_expr c, strip_expr v)) arms,
        Option.map strip_expr default )
  | Ast.Func (name, args) -> Ast.Func (lower name, List.map strip_expr args)
  | Ast.Agg_distinct (name, arg) -> Ast.Agg_distinct (lower name, strip_expr arg)
  | Ast.Is_null { negated; arg } -> Ast.Is_null { negated; arg = strip_expr arg }
  | Ast.Between { arg; lo; hi; negated } ->
    Ast.Between
      { arg = strip_expr arg; lo = strip_expr lo; hi = strip_expr hi; negated }
  | Ast.In_list { arg; candidates; negated } ->
    Ast.In_list
      {
        arg = strip_expr arg;
        candidates = List.map strip_expr candidates;
        negated;
      }
  | Ast.In_query { arg; query; negated } ->
    Ast.In_query { arg = strip_expr arg; query = strip_query query; negated }
  | Ast.Like { arg; pattern; negated } ->
    Ast.Like { arg = strip_expr arg; pattern = strip_expr pattern; negated }
  | Ast.Exists q -> Ast.Exists (strip_query q)
  | Ast.Scalar_subquery q -> Ast.Scalar_subquery (strip_query q)
  | Ast.Reaches r ->
    Ast.Reaches
      {
        src = strip_expr r.src;
        dst = strip_expr r.dst;
        edge =
          (match r.edge with
          | Ast.Ref_table t -> Ast.Ref_table (lower t)
          | Ast.Ref_subquery q -> Ast.Ref_subquery (strip_query q));
        edge_alias = Option.map lower r.edge_alias;
        src_cols = List.map lower r.src_cols;
        dst_cols = List.map lower r.dst_cols;
      }
  | Ast.Cheapest_sum { binding; weight } ->
    Ast.Cheapest_sum
      { binding = Option.map lower binding; weight = strip_expr weight }
  | Ast.Row es -> Ast.Row (List.map strip_expr es)

and strip_select_item = function
  | Ast.Sel_star q -> Ast.Sel_star (Option.map lower q)
  | Ast.Sel_expr (e, alias) ->
    let alias =
      match alias with
      | Ast.Alias_none -> Ast.Alias_none
      | Ast.Alias_name a -> Ast.Alias_name (lower a)
      | Ast.Alias_pair (a, b) -> Ast.Alias_pair (lower a, lower b)
    in
    Ast.Sel_expr (strip_expr e, alias)

and strip_from_item = function
  | Ast.From_table (t, a) -> Ast.From_table (lower t, Option.map lower a)
  | Ast.From_subquery (q, a) -> Ast.From_subquery (strip_query q, lower a)
  | Ast.From_unnest { arg; ordinality; alias; left_outer } ->
    Ast.From_unnest
      {
        arg = strip_expr arg;
        ordinality;
        alias = Option.map lower alias;
        left_outer;
      }
  | Ast.From_join (l, kind, r, cond) ->
    Ast.From_join
      (strip_from_item l, kind, strip_from_item r, Option.map strip_expr cond)

and strip_query (q : Ast.query) : Ast.query =
  {
    ctes =
      List.map
        (fun (c : Ast.cte) ->
          {
            Ast.cte_name = lower c.Ast.cte_name;
            cte_cols = Option.map (List.map lower) c.Ast.cte_cols;
            cte_query = strip_query c.Ast.cte_query;
            cte_recursive = c.Ast.cte_recursive;
          })
        q.ctes;
    distinct = q.distinct;
    items = List.map strip_select_item q.items;
    from = List.map strip_from_item q.from;
    where = Option.map strip_expr q.where;
    group_by = List.map strip_expr q.group_by;
    having = Option.map strip_expr q.having;
    setops = List.map (fun (op, b) -> (op, strip_query b)) q.setops;
    order_by = List.map (fun (e, d) -> (strip_expr e, d)) q.order_by;
    limit = q.limit;
    offset = q.offset;
  }

let strip_stmt (s : Ast.stmt) : Ast.stmt =
  match s with
  | Ast.Select q -> Ast.Select (strip_query q)
  | Ast.Explain { query; analyze } ->
    Ast.Explain { query = strip_query query; analyze }
  | Ast.Create_table (name, defs) ->
    Ast.Create_table
      ( lower name,
        List.map
          (fun (d : Ast.column_def) ->
            {
              Ast.col_name = lower d.Ast.col_name;
              col_type = lower d.Ast.col_type;
            })
          defs )
  | Ast.Create_table_as (name, q) -> Ast.Create_table_as (lower name, strip_query q)
  | Ast.Drop_table name -> Ast.Drop_table (lower name)
  | Ast.Insert { table; columns; source } ->
    Ast.Insert
      {
        table = lower table;
        columns = Option.map (List.map lower) columns;
        source =
          (match source with
          | Ast.Insert_values rows ->
            (* one parameter row stands for any number of them: a bulk
               INSERT of 1 or 1000 VALUES tuples is the same shape *)
            let arity = match rows with [] -> 0 | r :: _ -> List.length r in
            Ast.Insert_values [ List.init arity (fun _ -> Ast.Param 0) ]
          | Ast.Insert_query q -> Ast.Insert_query (strip_query q));
      }
  | Ast.Update { table; assignments; where } ->
    Ast.Update
      {
        table = lower table;
        assignments =
          List.map (fun (c, e) -> (lower c, strip_expr e)) assignments;
        where = Option.map strip_expr where;
      }
  | Ast.Delete { table; where } ->
    Ast.Delete { table = lower table; where = Option.map strip_expr where }
  | Ast.Set_option _ | Ast.Begin_txn | Ast.Commit_txn | Ast.Rollback_txn -> s

(* Token-level fallback for text the parser rejects. *)
let normalize_tokens src =
  let render (tok : Token.t) =
    match tok with
    | Token.INT _ | Token.FLOAT _ | Token.STRING _ | Token.PARAM -> Some "?"
    | Token.IDENT s -> Some (lower s)
    | Token.QIDENT s ->
      Some ("\"" ^ String.concat "\"\"" (String.split_on_char '"' (lower s)) ^ "\"")
    | Token.EOF -> None
    | t -> Some (Token.to_string t)
  in
  let toks =
    List.filter_map (fun (p : Lexer.positioned) -> render p.Lexer.tok) (Lexer.tokenize src)
  in
  (* a trailing ';' is framing, not shape *)
  let toks =
    match List.rev toks with ";" :: rest -> List.rev rest | _ -> toks
  in
  String.concat " " toks

(* Last resort for text that does not even lex: collapse whitespace and
   case so at least spacing/comment-free variants still collide. *)
let normalize_raw src =
  String.trim src |> lower
  |> String.map (fun c -> match c with '\t' | '\n' | '\r' -> ' ' | c -> c)

let normalize sql =
  match Parser.parse_stmt sql with
  | stmt -> Pretty.stmt_to_string (strip_stmt stmt)
  | exception _ -> (
    match normalize_tokens sql with
    | s -> s
    | exception _ -> normalize_raw sql)

(* FNV-1a, 64-bit: stable across runs and platforms (no Hashtbl.hash). *)
let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let hash_text s =
  let h = ref fnv_offset in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) fnv_prime)
    s;
  !h

let of_sql sql =
  let norm = normalize sql in
  (hash_text norm, norm)

let hash sql = fst (of_sql sql)
let to_hex h = Printf.sprintf "%016Lx" h
