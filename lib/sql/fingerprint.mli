(** Statement fingerprints: a normalized statement text plus a stable
    64-bit hash (FNV-1a), grouping statements that differ only in
    constants, whitespace, comments or identifier case — the key of the
    [sqlgraph_stat_statements] system table (DESIGN.md §14).

    Normalization is AST-based when the text parses (literals and host
    parameters become [?], identifiers are lowercased, the result is
    pretty-printed) with a token-level fallback otherwise; both are
    idempotent. LIMIT/OFFSET counts remain part of the shape. *)

(** [normalize sql] — the canonical text: ["SELECT a FROM t WHERE b = ?"]
    for any constant and spelling of that statement. *)
val normalize : string -> string

(** [of_sql sql] — [(hash, normalized)] in one pass. *)
val of_sql : string -> int64 * string

(** [hash sql = fst (of_sql sql)]. *)
val hash : string -> int64

(** [hash_text norm] — the FNV-1a hash of an already-normalized text. *)
val hash_text : string -> int64

(** [to_hex h] — 16 lowercase hex digits; the wire form used in query
    ids ([qid=<hex>:<seq>]) and the [fingerprint] column. *)
val to_hex : int64 -> string
