(* Benchmark harness reproducing the paper's evaluation (§4).

   One sub-command per artefact:
     table1           Table 1 (graph sizes per scale factor)
     fig1a            Figure 1a (Q13 vs Q14-variant latency per SF)
     fig1b            Figure 1b (Q13 latency per pair vs batch size)
     ablation-build   §4's "construction dominates" claim, measured
     ablation-heap    radix vs binary heap Dijkstra
     ablation-rewrite graph-join rewrite on/off
     ablation-csr     CSR build phase decomposition
     ablation-index   graph index (DESIGN.md §6) on/off
     ablation-dict    specialized vs generic vertex dictionary
     ablation-parallel batched traversal over 1..8 domains (§6)
     ablation-vectorized column-at-a-time vs row-at-a-time evaluation
     baselines        extension vs §1's standard-SQL techniques vs native BFS
     pairs            scalar per-source BFS vs batched MS-BFS on one batch
     micro            Bechamel micro-benchmarks of the kernels
     all              everything, with the given settings

   Scale factors above 10 are heavy; the default runs SF 1 and 3 at full
   size. Absolute numbers differ from the paper's MonetDB/Xeon setup; the
   *shapes* are what EXPERIMENTS.md compares. *)

module V = Storage.Value

let now () = Unix.gettimeofday ()

let time f =
  let t0 = now () in
  let r = f () in
  (r, now () -. t0)

(* ------------------------------------------------------------------ *)
(* Workload setup                                                      *)
(* ------------------------------------------------------------------ *)

type setup = {
  sf : int;
  db : Sqlgraph.Db.t;
  ids : int array;
  graph : Datagen.Snb.t;
}

let make_setup ~sf ~ratio ~seed =
  let graph = Datagen.Snb.generate ~scale_factor:sf ~ratio ~seed () in
  let db = Sqlgraph.Db.create () in
  Sqlgraph.Db.load_table db ~name:"persons" graph.Datagen.Snb.persons;
  Sqlgraph.Db.load_table db ~name:"friends" graph.Datagen.Snb.friends;
  { sf; db; ids = Datagen.Snb.person_ids graph; graph }

let q13_sql =
  "SELECT CHEAPEST SUM(1) WHERE ? REACHES ? OVER friends EDGE (src, dst)"

(* The paper's Q14 variant: one weighted shortest path (cost and path)
   using the precomputed affinities; cast to integers so the radix queue
   applies, as in appendix A.4. *)
let q14_sql =
  "SELECT CHEAPEST SUM(e: CAST(weight * 100 AS INTEGER)) AS (cost, path) \
   WHERE ? REACHES ? OVER friends e EDGE (src, dst)"

let batch_sql =
  "SELECT s, d, CHEAPEST SUM(1) AS c FROM pairs \
   WHERE s REACHES d OVER friends EDGE (src, dst)"

let run_single ?optimize setup sql (s, d) =
  match
    Sqlgraph.Db.query setup.db ?optimize ~params:[| V.Int s; V.Int d |] sql
  with
  | Ok r -> Sqlgraph.Resultset.nrows r
  | Error e -> failwith (Sqlgraph.Error.to_string e)

(* Average wall-clock latency of [f] over [reps] runs. *)
let avg_latency reps f =
  let total = ref 0. in
  for _ = 1 to reps do
    let _, dt = time f in
    total := !total +. dt
  done;
  !total /. float_of_int reps

let print_header title = Printf.printf "\n# %s\n%!" title

(* ------------------------------------------------------------------ *)
(* Table 1                                                             *)
(* ------------------------------------------------------------------ *)

let table1 ~ratio ~sfs ~seed =
  print_header
    (Printf.sprintf
       "Table 1: size of the graph at different scale factors (ratio %.3f)"
       ratio);
  Printf.printf "%-12s %15s %15s %18s %18s\n" "scale_factor" "vertices"
    "edges" "paper_vertices" "paper_edges";
  List.iter
    (fun sf ->
      let paper_v, paper_e = List.assoc sf Datagen.Snb.paper_sizes in
      let g = Datagen.Snb.generate ~scale_factor:sf ~ratio ~seed () in
      Printf.printf "%-12d %15d %15d %18d %18d\n%!" sf g.Datagen.Snb.n_persons
        g.Datagen.Snb.n_directed_edges paper_v paper_e)
    sfs

(* ------------------------------------------------------------------ *)
(* Figure 1a                                                           *)
(* ------------------------------------------------------------------ *)

let fig1a ~ratio ~sfs ~reps ~seed =
  print_header
    (Printf.sprintf
       "Figure 1a: average latency per query, seconds (reps=%d, ratio=%.3f)"
       reps ratio);
  Printf.printf "%-6s %18s %18s %12s\n" "sf" "q13_unweighted" "q14_weighted"
    "weighted/bfs";
  List.iter
    (fun sf ->
      let setup = make_setup ~sf ~ratio ~seed in
      let pairs =
        Datagen.Workload.random_pairs ~seed:(seed + 1) ~ids:setup.ids reps
      in
      let cursor = ref 0 in
      let next () =
        let p = pairs.(!cursor mod Array.length pairs) in
        incr cursor;
        p
      in
      (* warm up the allocator/caches once *)
      ignore (run_single setup q13_sql pairs.(0));
      let t13 =
        avg_latency reps (fun () -> ignore (run_single setup q13_sql (next ())))
      in
      cursor := 0;
      let t14 =
        avg_latency reps (fun () -> ignore (run_single setup q14_sql (next ())))
      in
      Printf.printf "%-6d %18.6f %18.6f %12.3f\n%!" sf t13 t14 (t14 /. t13))
    sfs

(* ------------------------------------------------------------------ *)
(* Figure 1b                                                           *)
(* ------------------------------------------------------------------ *)

let fig1b ~ratio ~sfs ~batches ~reps ~seed =
  print_header
    (Printf.sprintf
       "Figure 1b: Q13 latency per pair vs batch size, seconds (reps=%d, ratio=%.3f)"
       reps ratio);
  Printf.printf "%-6s" "sf";
  List.iter (fun b -> Printf.printf " %12s" (Printf.sprintf "batch=%d" b)) batches;
  print_newline ();
  List.iter
    (fun sf ->
      let setup = make_setup ~sf ~ratio ~seed in
      Printf.printf "%-6d" sf;
      List.iter
        (fun batch ->
          let per_pair_latencies =
            List.init reps (fun rep ->
                let pairs =
                  Datagen.Workload.random_pairs
                    ~seed:(seed + (97 * rep) + batch)
                    ~ids:setup.ids batch
                in
                Sqlgraph.Db.load_table setup.db ~name:"pairs"
                  (Datagen.Workload.pairs_table pairs);
                let _, dt =
                  time (fun () ->
                      match Sqlgraph.Db.query setup.db batch_sql with
                      | Ok r -> ignore (Sqlgraph.Resultset.nrows r)
                      | Error e -> failwith (Sqlgraph.Error.to_string e))
                in
                dt /. float_of_int batch)
          in
          let avg =
            List.fold_left ( +. ) 0. per_pair_latencies
            /. float_of_int (List.length per_pair_latencies)
          in
          Printf.printf " %12.6f%!" avg)
        batches;
      print_newline ())
    sfs

(* ------------------------------------------------------------------ *)
(* Ablations                                                           *)
(* ------------------------------------------------------------------ *)

(* A1: the §4 claim — graph construction dominates a single-pair query. *)
let ablation_build ~ratio ~sfs ~reps ~seed =
  print_header
    "Ablation A1: graph build vs traversal per single-pair Q13 (seconds)";
  Printf.printf "%-6s %14s %14s %14s %10s\n" "sf" "total" "graph_build"
    "traversal" "build%";
  List.iter
    (fun sf ->
      let setup = make_setup ~sf ~ratio ~seed in
      let pairs =
        Datagen.Workload.random_pairs ~seed:(seed + 2) ~ids:setup.ids reps
      in
      let total = ref 0. and build = ref 0. and trav = ref 0. in
      Array.iter
        (fun p ->
          let _, dt = time (fun () -> ignore (run_single setup q13_sql p)) in
          total := !total +. dt;
          match Sqlgraph.Db.last_stats setup.db with
          | Some s ->
            build := !build +. s.Executor.Interp.graph_build_seconds;
            trav := !trav +. s.Executor.Interp.graph_traverse_seconds
          | None -> ())
        pairs;
      let n = float_of_int reps in
      Printf.printf "%-6d %14.6f %14.6f %14.6f %9.1f%%\n%!" sf (!total /. n)
        (!build /. n) (!trav /. n)
        (100. *. !build /. !total))
    sfs

(* A2: radix vs binary heap, measured directly on the graph runtime. *)
let ablation_heap ~ratio ~sfs ~reps ~seed =
  print_header "Ablation A2: Dijkstra radix vs binary heap (traversal seconds)";
  Printf.printf "%-6s %14s %14s %10s\n" "sf" "radix" "binary" "radix/bin";
  List.iter
    (fun sf ->
      let setup = make_setup ~sf ~ratio ~seed in
      let friends = setup.graph.Datagen.Snb.friends in
      let src = Option.get (Storage.Table.column_by_name friends "src") in
      let dst = Option.get (Storage.Table.column_by_name friends "dst") in
      let weight_col =
        Option.get (Storage.Table.column_by_name friends "weight")
      in
      let rt = Graph.Runtime.build ~src ~dst in
      let n_edges = Storage.Table.nrows friends in
      let weights =
        Array.init n_edges (fun i ->
            max 1 (int_of_float (Storage.Column.float_at weight_col i *. 100.)))
      in
      let pairs =
        Array.map
          (fun (a, b) -> (V.Int a, V.Int b))
          (Datagen.Workload.random_pairs ~seed:(seed + 3) ~ids:setup.ids reps)
      in
      let run heap =
        snd
          (time (fun () ->
               ignore
                 (Graph.Runtime.run_pairs rt
                    ~weights:(Graph.Runtime.Int_weights weights) ~heap ~pairs
                    ())))
      in
      let tr = run Graph.Dijkstra.Radix in
      let tb = run Graph.Dijkstra.Binary in
      Printf.printf "%-6d %14.6f %14.6f %10.3f\n%!" sf tr tb (tr /. tb))
    sfs

(* A3: the paper's graph-join rewrite, on vs off, on the two-sided form. *)
let ablation_rewrite ~ratio ~sfs ~reps ~seed =
  print_header
    "Ablation A3: graph-join rewrite on/off (join-form Q13, seconds)";
  let sql =
    "SELECT p1.id, p2.id, CHEAPEST SUM(1) AS d FROM persons p1, persons p2 \
     WHERE p1.id = ? AND p2.id = ? \
       AND p1.id REACHES p2.id OVER friends EDGE (src, dst)"
  in
  Printf.printf "%-6s %16s %16s %10s\n" "sf" "with_rewrite" "without" "speedup";
  List.iter
    (fun sf ->
      let setup = make_setup ~sf ~ratio ~seed in
      let pairs =
        Datagen.Workload.random_pairs ~seed:(seed + 4) ~ids:setup.ids reps
      in
      let run optimize =
        let total = ref 0. in
        Array.iter
          (fun p ->
            let _, dt =
              time (fun () -> ignore (run_single ?optimize setup sql p))
            in
            total := !total +. dt)
          pairs;
        !total /. float_of_int reps
      in
      let t_on = run None in
      let t_off =
        run
          (Some
             { Relalg.Rewriter.default_options with form_graph_joins = false })
      in
      Printf.printf "%-6d %16.6f %16.6f %10.3f\n%!" sf t_on t_off
        (t_off /. t_on))
    sfs

(* A4: where the CSR build time goes. *)
let ablation_csr ~ratio ~sfs ~seed =
  print_header "Ablation A4: CSR construction phase decomposition (seconds)";
  Printf.printf "%-6s %12s %12s %12s %12s %12s %12s\n" "sf" "dict" "encode"
    "count" "prefix" "scatter" "total";
  List.iter
    (fun sf ->
      let g = Datagen.Snb.generate ~scale_factor:sf ~ratio ~seed () in
      let friends = g.Datagen.Snb.friends in
      let src = Option.get (Storage.Table.column_by_name friends "src") in
      let dst = Option.get (Storage.Table.column_by_name friends "dst") in
      let t0 = now () in
      let dict = Graph.Vertex_dict.build [ src; dst ] in
      let t1 = now () in
      let src_ids = Graph.Vertex_dict.encode_column dict src in
      let dst_ids = Graph.Vertex_dict.encode_column dict dst in
      let t2 = now () in
      let _, csr_t =
        Graph.Csr.build_timed
          ~vertex_count:(Graph.Vertex_dict.cardinality dict)
          ~src:src_ids ~dst:dst_ids
      in
      let t3 = now () in
      Printf.printf "%-6d %12.6f %12.6f %12.6f %12.6f %12.6f %12.6f\n%!" sf
        (t1 -. t0) (t2 -. t1) csr_t.Graph.Csr.count_phase
        csr_t.Graph.Csr.prefix_phase csr_t.Graph.Csr.scatter_phase (t3 -. t0))
    sfs

(* A5 (extension): the §6 graph index, killing the dominating build. *)
let ablation_index ~ratio ~sfs ~reps ~seed =
  print_header
    "Ablation A5: graph index on/off, single-pair Q13 (seconds per query)";
  Printf.printf "%-6s %16s %16s %10s\n" "sf" "no_index" "with_index" "speedup";
  List.iter
    (fun sf ->
      let setup = make_setup ~sf ~ratio ~seed in
      let pairs =
        Datagen.Workload.random_pairs ~seed:(seed + 5) ~ids:setup.ids reps
      in
      let cursor = ref 0 in
      let next () =
        let p = pairs.(!cursor mod Array.length pairs) in
        incr cursor;
        p
      in
      let t_off =
        avg_latency reps (fun () -> ignore (run_single setup q13_sql (next ())))
      in
      (match
         Sqlgraph.Db.create_graph_index setup.db ~table:"friends" ~src:"src"
           ~dst:"dst"
       with
      | Ok () -> ()
      | Error e -> failwith (Sqlgraph.Error.to_string e));
      (* the first indexed query builds and caches *)
      ignore (run_single setup q13_sql pairs.(0));
      cursor := 0;
      let t_on =
        avg_latency reps (fun () -> ignore (run_single setup q13_sql (next ())))
      in
      Printf.printf "%-6d %16.6f %16.6f %10.1f\n%!" sf t_off t_on
        (t_off /. t_on))
    sfs

(* A6: the dictionary fast path — the hot loop identified by A4. *)
let ablation_dict ~ratio ~sfs ~seed =
  print_header
    "Ablation A6: vertex dictionary, specialized int path vs generic \
     (build+encode seconds)";
  Printf.printf "%-6s %14s %14s %10s\n" "sf" "specialized" "generic" "speedup";
  List.iter
    (fun sf ->
      let g = Datagen.Snb.generate ~scale_factor:sf ~ratio ~seed () in
      let friends = g.Datagen.Snb.friends in
      let src = Option.get (Storage.Table.column_by_name friends "src") in
      let dst = Option.get (Storage.Table.column_by_name friends "dst") in
      let run specialize =
        snd
          (time (fun () ->
               let dict = Graph.Vertex_dict.build ~specialize [ src; dst ] in
               ignore (Graph.Vertex_dict.encode_column dict src);
               ignore (Graph.Vertex_dict.encode_column dict dst)))
      in
      let t_spec = run true in
      let t_gen = run false in
      Printf.printf "%-6d %14.6f %14.6f %10.2f\n%!" sf t_spec t_gen
        (t_gen /. t_spec))
    sfs

(* A7: §6's "rendering it parallel" — batched traversal over domains. *)
let ablation_parallel ~ratio ~sfs ~seed =
  print_header
    "Ablation A7: parallel batched traversal (256-pair Q13 batch, \
     traversal seconds; build excluded)";
  let domain_counts = [ 1; 2; 4; 8 ] in
  Printf.printf "%-6s" "sf";
  List.iter (fun d -> Printf.printf " %14s" (Printf.sprintf "domains=%d" d)) domain_counts;
  print_newline ();
  List.iter
    (fun sf ->
      let setup = make_setup ~sf ~ratio ~seed in
      let friends = setup.graph.Datagen.Snb.friends in
      let src = Option.get (Storage.Table.column_by_name friends "src") in
      let dst = Option.get (Storage.Table.column_by_name friends "dst") in
      let rt = Graph.Runtime.build ~src ~dst in
      let pairs =
        Array.map
          (fun (a, b) -> (V.Int a, V.Int b))
          (Datagen.Workload.random_pairs ~seed:(seed + 9) ~ids:setup.ids 256)
      in
      Printf.printf "%-6d" sf;
      List.iter
        (fun d ->
          let _, dt =
            time (fun () ->
                ignore
                  (Graph.Runtime.run_pairs rt ~weights:Graph.Runtime.Unweighted
                     ~domains:d ~pairs ()))
          in
          Printf.printf " %14.6f%!" dt)
        domain_counts;
      print_newline ())
    sfs

(* A8: column-at-a-time vs row-at-a-time expression evaluation — the
   MonetDB execution style vs a tuple interpreter, over a scan-heavy
   relational query on the persons/friends tables. *)
let ablation_vectorized ~ratio ~sfs ~seed =
  print_header
    "Ablation A8: vectorized vs row-at-a-time evaluation (relational \
     filter+project over the friends table, seconds)";
  let sql =
    "SELECT src + dst, CAST(weight * 100 AS INTEGER) FROM friends \
     WHERE src < dst AND weight > 1.0"
  in
  Printf.printf "%-6s %16s %16s %10s\n" "sf" "vectorized" "row_at_a_time"
    "speedup";
  List.iter
    (fun sf ->
      let setup = make_setup ~sf ~ratio ~seed in
      let run vectorize =
        let plan =
          Relalg.Rewriter.rewrite
            (Relalg.Binder.bind_query
               ~catalog:(Sqlgraph.Db.catalog setup.db)
               ~params:[||] (Sql.Parser.parse_query sql))
        in
        let ctx =
          Executor.Interp.create_ctx
            ~catalog:(Sqlgraph.Db.catalog setup.db)
            ~vectorize ()
        in
        (* warm once, then measure three runs *)
        ignore (Executor.Interp.run ctx plan);
        let _, dt =
          time (fun () ->
              for _ = 1 to 3 do
                ignore (Executor.Interp.run ctx plan)
              done)
        in
        dt /. 3.
      in
      let fast = run true in
      let slow = run false in
      Printf.printf "%-6d %16.6f %16.6f %10.2f\n%!" sf fast slow (slow /. fast))
    sfs

(* B1 (the paper's §1 motivation): the extension vs what standard SQL
   offers — a procedural frontier loop (PSM/recursion style), explicit
   join chains, and a native graph-framework BFS. *)
let baselines_bench ~ratio ~sfs ~reps ~seed =
  print_header
    "Baselines B1: CHEAPEST SUM vs standard-SQL techniques vs native BFS \
     (seconds per single-pair query)";
  Printf.printf "%-6s %14s %14s %14s %16s %16s\n" "sf" "extension"
    "frontier_sql" "native_bfs" "join_chain(<=2)" "recursive(<=6)";
  List.iter
    (fun sf ->
      let setup = make_setup ~sf ~ratio ~seed in
      let pairs =
        Datagen.Workload.random_pairs ~seed:(seed + 8) ~ids:setup.ids reps
      in
      let avg f =
        let total = ref 0. in
        Array.iter
          (fun p ->
            let _, dt = time (fun () -> f p) in
            total := !total +. dt)
          pairs;
        !total /. float_of_int reps
      in
      let t_ext = avg (fun p -> ignore (run_single setup q13_sql p)) in
      let t_frontier =
        avg (fun (s, d) ->
            ignore
              (Baselines.Sql_bfs.frontier_distance setup.db
                 ~edge_table:"friends" ~src_col:"src" ~dst_col:"dst" ~source:s
                 ~target:d ()))
      in
      let friends = setup.graph.Datagen.Snb.friends in
      let native =
        Baselines.Native_bfs.of_table friends ~src_col:"src" ~dst_col:"dst"
      in
      let t_native =
        avg (fun (s, d) ->
            ignore (Baselines.Native_bfs.distance native ~source:s ~target:d))
      in
      (* join chains enumerate paths: cap the depth hard, and accept that
         unreachable/distant pairs simply report the cap *)
      let t_chain =
        avg (fun (s, d) ->
            ignore
              (Baselines.Sql_bfs.join_chain_distance setup.db
                 ~edge_table:"friends" ~src_col:"src" ~dst_col:"dst" ~source:s
                 ~target:d ~max_hops:2 ()))
      in
      let t_recursive =
        avg (fun (s, d) ->
            ignore
              (Baselines.Sql_bfs.recursive_distance setup.db
                 ~edge_table:"friends" ~src_col:"src" ~dst_col:"dst" ~source:s
                 ~target:d ~max_hops:6 ()))
      in
      Printf.printf "%-6d %14.6f %14.6f %14.6f %16.6f %16.6f\n%!" sf t_ext
        t_frontier t_native t_chain t_recursive)
    sfs

(* ------------------------------------------------------------------ *)
(* Pairs: scalar vs batched multi-source traversal                     *)
(* ------------------------------------------------------------------ *)

(* P1: the batched traversal engine. One graph, many sources — the §4
   batch workload — answered per-source (one BFS per distinct source)
   vs bit-parallel MS-BFS (63 sources per wave), with byte-identity of
   every outcome asserted before any number is reported. *)
let pairs_bench ?json ~ratio ~sources ~seed () =
  print_header
    (Printf.sprintf
       "Pairs P1: scalar per-source BFS vs batched MS-BFS (%d sources, \
        ratio %.3f)"
       sources ratio);
  let setup = make_setup ~sf:1 ~ratio ~seed in
  let friends = setup.graph.Datagen.Snb.friends in
  let src = Option.get (Storage.Table.column_by_name friends "src") in
  let dst = Option.get (Storage.Table.column_by_name friends "dst") in
  let rt = Graph.Runtime.build ~src ~dst in
  Graph.Runtime.prepare_bidir rt;
  let pairs =
    Array.map
      (fun (a, b) -> (V.Int a, V.Int b))
      (Datagen.Workload.random_pairs ~seed:(seed + 11) ~ids:setup.ids sources)
  in
  let run ?domains engine =
    Graph.Runtime.run_pairs rt ~weights:Graph.Runtime.Unweighted ?domains
      ~engine ~pairs ()
  in
  (* Warm every configuration once — workspace pool, batch scratch and
     allocator — so no timed run pays first-use allocation. *)
  ignore (run `Scalar);
  ignore (run `Batched);
  ignore (run ~domains:2 `Batched);
  ignore (run ~domains:4 `Batched);
  let scalar, t_scalar = time (fun () -> run `Scalar) in
  (* One batched measurement per domain count: counter deltas from the
     first run (scheduling-independent, so any run would do), time as
     the min of three — symmetric across configurations so the scaling
     ratios compare floors, not noise. *)
  let measure ?domains () =
    let cb = Graph.Runtime.traversal_counters rt in
    let sb = Graph.Runtime.sched_counters rt in
    let outs, t1 = time (fun () -> run ?domains `Batched) in
    let ca = Graph.Runtime.traversal_counters rt in
    let sa = Graph.Runtime.sched_counters rt in
    let _, t2 = time (fun () -> ignore (run ?domains `Batched)) in
    let _, t3 = time (fun () -> ignore (run ?domains `Batched)) in
    ( outs,
      Float.min t1 (Float.min t2 t3),
      ca.Graph.Workspace.waves - cb.Graph.Workspace.waves,
      ca.Graph.Workspace.dir_switches - cb.Graph.Workspace.dir_switches,
      sa.Graph.Runtime.sc_steals - sb.Graph.Runtime.sc_steals,
      sa.Graph.Runtime.sc_tasks - sb.Graph.Runtime.sc_tasks )
  in
  let batched, t_batched, waves, switches, steals1, tasks1 = measure () in
  let batched2, t_batched2, waves2, switches2, steals2, tasks2 =
    measure ~domains:2 ()
  in
  let batched4, t_batched4, waves4, switches4, steals4, tasks4 =
    measure ~domains:4 ()
  in
  let outcomes_equal a b =
    Array.for_all2
      (fun a b ->
        match a, b with
        | Graph.Runtime.Unreachable, Graph.Runtime.Unreachable -> true
        | ( Graph.Runtime.Reached { cost = c1; edge_rows = r1 },
            Graph.Runtime.Reached { cost = c2; edge_rows = r2 } ) ->
          V.equal c1 c2 && r1 = r2
        | _ -> false)
      a b
  in
  let identical =
    outcomes_equal scalar batched
    && outcomes_equal scalar batched2
    && outcomes_equal scalar batched4
  in
  if not identical then
    failwith "pairs: engine outcomes differ (scalar vs batched/domains)";
  (* Telemetry overhead on this scenario.  The span hooks are always
     compiled in; with tracing off each reduces to one atomic load, so
     the honest in-binary bound on "tracing-off overhead" is the
     repeat-run delta of two identical tracing-off passes (min-of-5 each
     — minima of the same distribution converge to the same floor).
     check.sh asserts it stays under the 2%-of-noise line.  The
     tracing-on cost is measured against the faster off pass and is
     informational. *)
  let min_time n f =
    let best = ref infinity in
    for _ = 1 to n do
      let _, dt = time f in
      if dt < !best then best := dt
    done;
    !best
  in
  Telemetry.Trace.set_enabled false;
  let t_off_a = min_time 5 (fun () -> ignore (run `Batched)) in
  let t_off_b = min_time 5 (fun () -> ignore (run `Batched)) in
  Telemetry.Trace.configure ~capacity:65536;
  Telemetry.Trace.set_enabled true;
  let t_on = min_time 5 (fun () -> ignore (run `Batched)) in
  Telemetry.Trace.set_enabled false;
  let t_off = Float.min t_off_a t_off_b in
  let trace_off_overhead_pct =
    Float.max 0. (100. *. (t_off_b -. t_off_a) /. t_off_a)
  in
  let trace_on_overhead_pct = 100. *. (t_on -. t_off) /. t_off in
  Printf.printf
    "tracing overhead: off=%.2f%% (repeat-run delta), on=%.2f%%\n%!"
    trace_off_overhead_pct trace_on_overhead_pct;
  let n_edges = Graph.Runtime.edge_count rt in
  Printf.printf
    "graph: %d vertices, %d edges; %d pairs (byte-identical outcomes)\n"
    (Graph.Runtime.vertex_count rt)
    n_edges sources;
  Printf.printf "%-28s %14s\n" "engine" "seconds";
  Printf.printf "%-28s %14.6f\n" "scalar per-source" t_scalar;
  let print_row name t waves switches steals tasks =
    Printf.printf
      "%-28s %14.6f   (%d waves, %d dir switches, %d tasks, %d steals)\n" name
      t waves switches tasks steals
  in
  print_row "batched ms-bfs" t_batched waves switches steals1 tasks1;
  print_row "batched ms-bfs, domains=2" t_batched2 waves2 switches2 steals2
    tasks2;
  print_row "batched ms-bfs, domains=4" t_batched4 waves4 switches4 steals4
    tasks4;
  Printf.printf "speedup (batched vs scalar, domains=1): %.2fx\n"
    (t_scalar /. t_batched);
  Printf.printf "speedup (domains=4 vs domains=1): %.2fx\n%!"
    (t_batched /. t_batched4);
  match json with
  | None -> ()
  | Some path ->
    (* [counters] is None for the scalar per-source baseline: it runs no
       batched waves and no work-stealing tasks, so those fields are
       null — not 0, which would read as "measured, and it was zero"
       (json_lint enforces the distinction). *)
    let entry ~name ~seconds ~domains ~counters =
      let c pick =
        match counters with
        | None -> Sqlgraph.Metrics.Null
        | Some cs -> Sqlgraph.Metrics.Int (pick cs)
      in
      Sqlgraph.Metrics.Obj
        [
          ("name", Sqlgraph.Metrics.String name);
          ("seconds", Sqlgraph.Metrics.num seconds);
          ("domains", Sqlgraph.Metrics.Int domains);
          ("waves", c (fun (w, _, _, _) -> w));
          ("dir_switches", c (fun (_, s, _, _) -> s));
          ("steals", c (fun (_, _, s, _) -> s));
          ("tasks", c (fun (_, _, _, t) -> t));
        ]
    in
    Sqlgraph.Metrics.write_file ~path
      (Sqlgraph.Metrics.Obj
         [
           ("schema", Sqlgraph.Metrics.String "sqlgraph-bench-v1");
           ("suite", Sqlgraph.Metrics.String "pairs");
           ("ratio", Sqlgraph.Metrics.num ratio);
           ("seed", Sqlgraph.Metrics.Int seed);
           ("vertices", Sqlgraph.Metrics.Int (Graph.Runtime.vertex_count rt));
           ("edges", Sqlgraph.Metrics.Int n_edges);
           ("sources", Sqlgraph.Metrics.Int sources);
           ("identical", Sqlgraph.Metrics.Bool identical);
           ( "results",
             Sqlgraph.Metrics.List
               [
                 entry ~name:"pairs/scalar-per-source" ~seconds:t_scalar
                   ~domains:1 ~counters:None;
                 entry ~name:"pairs/batched-msbfs" ~seconds:t_batched
                   ~domains:1
                   ~counters:(Some (waves, switches, steals1, tasks1));
                 entry ~name:"pairs/batched-msbfs-domains2"
                   ~seconds:t_batched2 ~domains:2
                   ~counters:(Some (waves2, switches2, steals2, tasks2));
                 entry ~name:"pairs/batched-msbfs-domains4"
                   ~seconds:t_batched4 ~domains:4
                   ~counters:(Some (waves4, switches4, steals4, tasks4));
               ] );
           ( "speedup_batched_vs_scalar",
             Sqlgraph.Metrics.num (t_scalar /. t_batched) );
           (* Flat copies of the sweep for shell gates (check.sh parses
              these with sed; the per-entry fields above are the full
              record). *)
           ("domains1_seconds", Sqlgraph.Metrics.num t_batched);
           ("domains2_seconds", Sqlgraph.Metrics.num t_batched2);
           ("domains4_seconds", Sqlgraph.Metrics.num t_batched4);
           ( "speedup_domains4_vs_domains1",
             Sqlgraph.Metrics.num (t_batched /. t_batched4) );
           ( "trace_off_overhead_pct",
             Sqlgraph.Metrics.num trace_off_overhead_pct );
           ("trace_on_overhead_pct", Sqlgraph.Metrics.num trace_on_overhead_pct);
         ]);
    Printf.printf "wrote %s\n%!" path

(* ------------------------------------------------------------------ *)
(* WAL overhead: single-row INSERT throughput, in-memory vs durable     *)
(* ------------------------------------------------------------------ *)

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let with_temp_dir f =
  let path = Filename.temp_file "sqlgraph-bench-wal" "" in
  Sys.remove path;
  Sys.mkdir path 0o755;
  Fun.protect ~finally:(fun () -> rm_rf path) (fun () -> f path)

(* The durability acceptance bar: write-ahead logging without fsync must
   stay within a few percent of a plain in-memory session (the log write
   is one buffered append per statement), while the fsync'd mode shows
   the true price of "this statement survives power loss".  Each mode
   runs [rows] single-row INSERTs through the full statement path;
   in-memory and no-fsync report min-of-3 (fsync'd runs once — its cost
   is the disk's, not the scheduler's). *)
let wal_bench ?json ~rows () =
  print_header "WAL overhead (single-row INSERT throughput)";
  let workload db n =
    for i = 1 to n do
      match
        Sqlgraph.Db.exec db ~params:[| Storage.Value.Int i |]
          "INSERT INTO t VALUES (?)"
      with
      | Ok _ -> ()
      | Error e -> failwith (Sqlgraph.Error.to_string e)
    done
  in
  let run_memory n =
    let db = Sqlgraph.Db.create () in
    Sqlgraph.Db.exec_exn db "CREATE TABLE t (a INTEGER)" |> ignore;
    Gc.compact ();
    let _, dt = time (fun () -> workload db n) in
    dt
  in
  let run_durable ~fsync n =
    with_temp_dir (fun dir ->
        match Sqlgraph.Wal.open_dir ~fsync dir with
        | Error e -> failwith (Sqlgraph.Error.to_string e)
        | Ok (store, db, _) ->
          Fun.protect
            ~finally:(fun () -> Sqlgraph.Wal.close store)
            (fun () ->
              Sqlgraph.Db.exec_exn db "CREATE TABLE t (a INTEGER)" |> ignore;
              Gc.compact ();
              let _, dt = time (fun () -> workload db n) in
              dt))
  in
  (* untimed warmup, then a paired design: each iteration times the two
     modes back-to-back (so they see the same background load) and the
     reported overhead comes from the median per-iteration ratio — a
     load spike during either half of an iteration shifts that pair to
     an extreme and the median discards it. Gc.compact before each
     timed window keeps major collections from landing in one mode's
     measurement but not the other's. *)
  ignore (run_memory rows);
  ignore (run_durable ~fsync:false rows);
  let samples =
    List.init 7 (fun _ ->
        let m = run_memory rows in
        let d = run_durable ~fsync:false rows in
        (d /. m, m, d))
  in
  let sorted =
    List.sort (fun (r1, _, _) (r2, _, _) -> compare r1 r2) samples
  in
  let _, t_mem, t_nofsync = List.nth sorted (List.length sorted / 2) in
  let fsync_rows = max 50 (rows / 20) in
  let t_fsync = run_durable ~fsync:true fsync_rows in
  let rate n dt = float_of_int n /. dt in
  let r_mem = rate rows t_mem in
  let r_nofsync = rate rows t_nofsync in
  let r_fsync = rate fsync_rows t_fsync in
  let overhead_pct = 100. *. (r_mem -. r_nofsync) /. r_mem in
  Printf.printf "%-28s %14s %14s\n" "mode" "stmts/sec" "seconds";
  Printf.printf "%-28s %14.0f %14.6f\n" "in-memory" r_mem t_mem;
  Printf.printf "%-28s %14.0f %14.6f\n" "wal --no-fsync" r_nofsync t_nofsync;
  Printf.printf "%-28s %14.0f %14.6f   (%d rows)\n" "wal fsync-per-commit"
    r_fsync t_fsync fsync_rows;
  Printf.printf "no-fsync overhead vs in-memory: %.2f%%\n%!" overhead_pct;
  match json with
  | None -> ()
  | Some path ->
    Sqlgraph.Metrics.write_file ~path
      (Sqlgraph.Metrics.Obj
         [
           ("schema", Sqlgraph.Metrics.String "sqlgraph-bench-v1");
           ("suite", Sqlgraph.Metrics.String "wal");
           ("rows", Sqlgraph.Metrics.Int rows);
           ("fsync_rows", Sqlgraph.Metrics.Int fsync_rows);
           ( "results",
             Sqlgraph.Metrics.List
               [
                 Sqlgraph.Metrics.Obj
                   [
                     ("name", Sqlgraph.Metrics.String "wal/in-memory");
                     ("stmts_per_sec", Sqlgraph.Metrics.num r_mem);
                     ("seconds", Sqlgraph.Metrics.num t_mem);
                   ];
                 Sqlgraph.Metrics.Obj
                   [
                     ("name", Sqlgraph.Metrics.String "wal/no-fsync");
                     ("stmts_per_sec", Sqlgraph.Metrics.num r_nofsync);
                     ("seconds", Sqlgraph.Metrics.num t_nofsync);
                   ];
                 Sqlgraph.Metrics.Obj
                   [
                     ("name", Sqlgraph.Metrics.String "wal/fsync");
                     ("stmts_per_sec", Sqlgraph.Metrics.num r_fsync);
                     ("seconds", Sqlgraph.Metrics.num t_fsync);
                   ];
               ] );
           ("nofsync_vs_memory_pct", Sqlgraph.Metrics.num overhead_pct);
         ]);
    Printf.printf "wrote %s\n%!" path

(* ------------------------------------------------------------------ *)
(* Server: group commit vs single-session fsync                        *)
(* ------------------------------------------------------------------ *)

(* The multi-session server's acceptance bar: durable commit throughput
   with many concurrent sessions must beat a single session by the
   group-commit factor — one shared fsync acknowledges a whole batch of
   COMMITs instead of one fsync each.  Both measurements run the same
   code path (in-process server over socketpairs, fsync'd WAL, every
   INSERT acknowledged only after its covering fsync lands); only the
   client count differs, so the ratio isolates the batching win. *)
let server_bench ?json ~commits ~clients () =
  print_header "Multi-session server (durable commit throughput)";
  if Sys.os_type = "Unix" then Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let module Server = Sqlgraph_server.Server in
  let module Client = Sqlgraph_server.Client in
  let run_at c total =
    with_temp_dir (fun dir ->
        match Sqlgraph.Wal.open_dir ~fsync:true dir with
        | Error e -> failwith (Sqlgraph.Error.to_string e)
        | Ok (store, db, _) ->
          Sqlgraph.Db.exec_exn db "CREATE TABLE t (client INTEGER, v INTEGER)"
          |> ignore;
          let config =
            {
              Sqlgraph_server.Scheduler.default_config with
              max_sessions = max c 32;
              write_high_water = max c 32;
            }
          in
          let srv = Server.create ~config ~db ~store:(Some store) () in
          Fun.protect
            ~finally:(fun () ->
              Server.shutdown srv;
              try Sqlgraph.Wal.close store with _ -> ())
            (fun () ->
              let clients =
                Array.init c (fun _ ->
                    let a, b =
                      Unix.socketpair ~cloexec:true Unix.PF_UNIX
                        Unix.SOCK_STREAM 0
                    in
                    Server.attach srv a;
                    (Client.of_fd b, b))
              in
              let insert i k =
                Printf.sprintf "INSERT INTO t VALUES (%d, %d)" i k
              in
              (* warmup: greet every session and prime the write path *)
              Array.iteri
                (fun i (cl, _) -> ignore (Client.request cl (insert i 0)))
                clients;
              let per = total / c in
              (* group mode: each client keeps a small window of
                 statements in flight so the measurement is the server's
                 durable commit throughput, not the client's socket
                 round-trip latency.  The baseline is the classic
                 single-session discipline — one commit in flight,
                 fsync'd and acknowledged before the next is issued. *)
              let window = if c = 1 then 1 else 16 in
              (* the clients share the process (and the OCaml runtime
                 lock) with the server, so the timed loop keeps them as
                 thin as possible: requests are precomputed, responses
                 are acknowledged by counting newlines, and an ERR
                 anywhere in the stream fails the run *)
              let run_client i fd =
                let reqs =
                  Array.init per (fun k -> insert i (k + 1) ^ "\n")
                in
                let offsets = Array.make (per + 1) 0 in
                for k = 0 to per - 1 do
                  offsets.(k + 1) <- offsets.(k) + String.length reqs.(k)
                done;
                let payload = String.concat "" (Array.to_list reqs) in
                let chunk = Bytes.create 65536 in
                let sent = ref 0 and acked = ref 0 in
                let tail = ref "" in
                while !acked < per do
                  let burst = min window (per - !sent) in
                  if burst > 0 && !sent - !acked < window then begin
                    let off = offsets.(!sent) in
                    let len = offsets.(!sent + burst) - off in
                    let rec push o l =
                      if l > 0 then begin
                        let n = Unix.write_substring fd payload o l in
                        push (o + n) (l - n)
                      end
                    in
                    push off len;
                    sent := !sent + burst
                  end;
                  let n = Unix.read fd chunk 0 (Bytes.length chunk) in
                  if n = 0 then failwith "server closed mid-run";
                  let fresh = Bytes.sub_string chunk 0 n in
                  (* the carry only guards ERR detection across read
                     boundaries; newlines are counted in [fresh] alone *)
                  (match Astring.String.find_sub ~sub:"ERR" (!tail ^ fresh) with
                  | Some _ ->
                    failwith ("commit not acknowledged: " ^ fresh)
                  | None -> ());
                  String.iter (fun ch -> if ch = '\n' then incr acked) fresh;
                  tail :=
                    String.sub fresh
                      (max 0 (n - 2))
                      (min 2 n)
                done
              in
              Gc.compact ();
              let t0 = Unix.gettimeofday () in
              let threads =
                Array.mapi
                  (fun i (_, fd) -> Thread.create (fun () -> run_client i fd) ())
                  clients
              in
              Array.iter Thread.join threads;
              let dt = Unix.gettimeofday () -. t0 in
              Array.iter (fun (cl, _) -> Client.close cl) clients;
              let mean_group =
                match
                  Telemetry.Registry.percentiles
                    (Sqlgraph_server.Scheduler.metrics (Server.scheduler srv))
                    "sqlgraph_server_group_commit_size"
                with
                | Some p when p.Telemetry.Registry.count > 0 ->
                  p.Telemetry.Registry.sum /. float_of_int p.Telemetry.Registry.count
                | _ -> 1.
              in
              (float_of_int (c * per) /. dt, dt, c * per, mean_group)))
  in
  let r_single, t_single, n_single, _ = run_at 1 commits in
  let nclients = clients in
  let r_group, t_group, n_group, mean_group = run_at nclients commits in
  let ratio = r_group /. r_single in
  Printf.printf "%-28s %14s %14s\n" "mode" "commits/sec" "seconds";
  Printf.printf "%-28s %14.0f %14.6f   (%d commits)\n" "1 session, fsync each"
    r_single t_single n_single;
  Printf.printf "%-28s %14.0f %14.6f   (%d commits)\n"
    (Printf.sprintf "%d sessions, group commit" nclients)
    r_group t_group n_group;
  Printf.printf "group-commit speedup: %.2fx (mean batch %.1f commits/fsync)\n%!"
    ratio mean_group;
  match json with
  | None -> ()
  | Some path ->
    Sqlgraph.Metrics.write_file ~path
      (Sqlgraph.Metrics.Obj
         [
           ("schema", Sqlgraph.Metrics.String "sqlgraph-bench-v1");
           ("suite", Sqlgraph.Metrics.String "server");
           ("commits", Sqlgraph.Metrics.Int commits);
           ("clients", Sqlgraph.Metrics.Int nclients);
           ( "results",
             Sqlgraph.Metrics.List
               [
                 Sqlgraph.Metrics.Obj
                   [
                     ("name", Sqlgraph.Metrics.String "server/single-fsync");
                     ("commits_per_sec", Sqlgraph.Metrics.num r_single);
                     ("seconds", Sqlgraph.Metrics.num t_single);
                   ];
                 Sqlgraph.Metrics.Obj
                   [
                     ("name", Sqlgraph.Metrics.String "server/group-commit");
                     ("commits_per_sec", Sqlgraph.Metrics.num r_group);
                     ("seconds", Sqlgraph.Metrics.num t_group);
                   ];
               ] );
           ("mean_group_size", Sqlgraph.Metrics.num mean_group);
           ("group_vs_single_x", Sqlgraph.Metrics.num ratio);
         ]);
    Printf.printf "wrote %s\n%!" path

(* ------------------------------------------------------------------ *)
(* Replication: catch-up bandwidth and steady-state lag                *)
(* ------------------------------------------------------------------ *)

(* The hot standby's acceptance bar (DESIGN.md §15): a fresh replica
   catches an existing WAL up over the wire at bulk-transfer speed
   (reported MB/s), and in steady state — every batch shipped between
   its fsync and its acks — the apply lag stays bounded (bytes, sampled
   after each acknowledged commit) and drains to zero once the writer
   stops. *)
let repl_bench ?json ~rows ~commits () =
  print_header "Replication (catch-up bandwidth, steady-state lag)";
  if Sys.os_type = "Unix" then Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let module Server = Sqlgraph_server.Server in
  let module Client = Sqlgraph_server.Client in
  let module Repl = Sqlgraph_server.Replication in
  with_temp_dir (fun pdir ->
      with_temp_dir (fun rdir ->
          let psock = Filename.concat pdir "primary.sock" in
          match Sqlgraph.Wal.open_dir ~fsync:false pdir with
          | Error e -> failwith (Sqlgraph.Error.to_string e)
          | Ok (store, db, _) ->
            (* a pre-existing WAL for the catch-up phase: logged rows
               with a payload wide enough that bandwidth, not per-frame
               overhead, dominates *)
            Sqlgraph.Db.exec_exn db
              "CREATE TABLE t (client INTEGER, v INTEGER, pad VARCHAR)"
            |> ignore;
            let pad = String.make 120 'x' in
            for k = 1 to rows do
              Sqlgraph.Db.exec_exn db
                (Printf.sprintf "INSERT INTO t VALUES (0, %d, '%s')" k pad)
              |> ignore
            done;
            let srv = Server.create ~db ~store:(Some store) () in
            let hub =
              Repl.Hub.create ~sched:(Server.scheduler srv) ~store ~db ()
            in
            Server.listen_unix srv psock;
            match Sqlgraph.Wal.open_replica ~fsync:false rdir with
            | Error e -> failwith (Sqlgraph.Error.to_string e)
            | Ok (rstore, rdb, _) ->
              let rsrv = Server.create ~db:rdb ~store:(Some rstore) () in
              let target = Sqlgraph.Wal.logical_end store in
              let t0 = Unix.gettimeofday () in
              let standby =
                Repl.Standby.create
                  ~sched:(Server.scheduler rsrv)
                  ~store:rstore ~db:rdb
                  ~primary:(Client.Unix_ep psock) ()
              in
              Fun.protect
                ~finally:(fun () ->
                  Repl.Standby.stop standby;
                  Repl.Hub.stop hub;
                  Server.shutdown rsrv;
                  Server.shutdown srv;
                  (try Sqlgraph.Wal.close rstore with _ -> ());
                  try Sqlgraph.Wal.close store with _ -> ())
                (fun () ->
                  let deadline = t0 +. 120. in
                  while
                    Repl.Standby.applied_offset standby < target
                    && Unix.gettimeofday () < deadline
                  do
                    Thread.yield ()
                  done;
                  let catchup_s = Unix.gettimeofday () -. t0 in
                  if Repl.Standby.applied_offset standby < target then
                    failwith "replica failed to catch up within 120s";
                  let catchup_bytes = target in
                  let mbps =
                    float_of_int catchup_bytes /. catchup_s /. 1.0e6
                  in
                  (* steady state: acked commits through the server's
                     write path, lag sampled after every ack *)
                  let cl = Client.connect_unix psock in
                  let lag_sum = ref 0 and lag_max = ref 0 in
                  let t1 = Unix.gettimeofday () in
                  for k = 1 to commits do
                    let lines =
                      Client.request cl
                        (Printf.sprintf
                           "INSERT INTO t VALUES (1, %d, '%s')" k pad)
                    in
                    if not (Client.is_ok lines) then
                      failwith ("commit refused: " ^ Client.terminal lines);
                    let lag = Repl.Standby.lag standby in
                    lag_sum := !lag_sum + lag;
                    lag_max := max !lag_max lag
                  done;
                  let steady_s = Unix.gettimeofday () -. t1 in
                  Client.close cl;
                  (* quiesce: the lag must drain to zero *)
                  let upto = Sqlgraph.Wal.logical_end store in
                  let t2 = Unix.gettimeofday () in
                  while
                    Repl.Standby.applied_offset standby < upto
                    && Unix.gettimeofday () < t2 +. 30.
                  do
                    Thread.yield ()
                  done;
                  let drain_s = Unix.gettimeofday () -. t2 in
                  if Repl.Standby.applied_offset standby < upto then
                    failwith "steady-state lag failed to drain within 30s";
                  let lag_mean =
                    float_of_int !lag_sum /. float_of_int (max 1 commits)
                  in
                  let steady_rate = float_of_int commits /. steady_s in
                  Printf.printf "%-28s %14.2f MB/s   (%d bytes in %.3fs)\n"
                    "catch-up" mbps catchup_bytes catchup_s;
                  Printf.printf
                    "%-28s %14.0f commits/sec   (lag mean %.0f B, max %d B, \
                     drain %.3fs)\n\
                     %!"
                    "steady state" steady_rate lag_mean !lag_max drain_s;
                  match json with
                  | None -> ()
                  | Some path ->
                    Sqlgraph.Metrics.write_file ~path
                      (Sqlgraph.Metrics.Obj
                         [
                           ( "schema",
                             Sqlgraph.Metrics.String "sqlgraph-bench-v1" );
                           ("suite", Sqlgraph.Metrics.String "repl");
                           ("rows", Sqlgraph.Metrics.Int rows);
                           ("commits", Sqlgraph.Metrics.Int commits);
                           ( "catchup_bytes",
                             Sqlgraph.Metrics.Int catchup_bytes );
                           ("catchup_seconds", Sqlgraph.Metrics.num catchup_s);
                           ("catchup_mb_per_sec", Sqlgraph.Metrics.num mbps);
                           ( "steady_commits_per_sec",
                             Sqlgraph.Metrics.num steady_rate );
                           ( "steady_lag_bytes_mean",
                             Sqlgraph.Metrics.num lag_mean );
                           ( "steady_lag_bytes_max",
                             Sqlgraph.Metrics.Int !lag_max );
                           ("drain_seconds", Sqlgraph.Metrics.num drain_s);
                         ]);
                    Printf.printf "wrote %s\n%!" path)))

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks                                           *)
(* ------------------------------------------------------------------ *)

let micro ?json ?trace_out ~ratio ~seed () =
  if trace_out <> None then Telemetry.Trace.set_enabled true;
  print_header "Bechamel micro-benchmarks (one kernel per experiment)";
  let setup = make_setup ~sf:1 ~ratio ~seed in
  let friends = setup.graph.Datagen.Snb.friends in
  let src = Option.get (Storage.Table.column_by_name friends "src") in
  let dst = Option.get (Storage.Table.column_by_name friends "dst") in
  let rt = Graph.Runtime.build ~src ~dst in
  let pair_pool =
    Datagen.Workload.random_pairs ~seed:(seed + 6) ~ids:setup.ids 64
  in
  let pick =
    let i = ref 0 in
    fun () ->
      let p = pair_pool.(!i mod 64) in
      incr i;
      p
  in
  let batch_pairs =
    Array.map
      (fun (a, b) -> (V.Int a, V.Int b))
      (Datagen.Workload.random_pairs ~seed:(seed + 7) ~ids:setup.ids 16)
  in
  let open Bechamel in
  let tests =
    [
      (* T1 kernel: graph generation *)
      Test.make ~name:"table1/generate-sf1@0.05"
        (Staged.stage (fun () ->
             ignore (Datagen.Snb.generate ~scale_factor:1 ~ratio:0.05 ~seed ())));
      (* F1a kernels: single-pair Q13 / Q14 through the full SQL stack *)
      Test.make ~name:"fig1a/q13-single-pair"
        (Staged.stage (fun () -> ignore (run_single setup q13_sql (pick ()))));
      Test.make ~name:"fig1a/q14-single-pair"
        (Staged.stage (fun () -> ignore (run_single setup q14_sql (pick ()))));
      (* F1b kernel: a 16-pair batch on a prebuilt graph *)
      Test.make ~name:"fig1b/batch16-on-built-graph"
        (Staged.stage (fun () ->
             ignore
               (Graph.Runtime.run_pairs rt ~weights:Graph.Runtime.Unweighted
                  ~pairs:batch_pairs ())));
      (* A1 kernel: the dominating build step alone *)
      Test.make ~name:"ablation-build/dict+csr"
        (Staged.stage (fun () -> ignore (Graph.Runtime.build ~src ~dst)));
      (* compiler kernel: SQL front-end alone *)
      Test.make ~name:"compiler/parse+bind-q13"
        (Staged.stage (fun () ->
             ignore
               (Relalg.Binder.bind_query
                  ~catalog:(Sqlgraph.Db.catalog setup.db)
                  ~params:[| V.Int 7; V.Int 20 |]
                  (Sql.Parser.parse_query q13_sql))));
    ]
  in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 1.0) ~kde:None () in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  Printf.printf "%-36s %18s\n" "benchmark" "ns/run";
  let measured = ref [] in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] test in
      let analyzed = Analyze.all ols instance results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ est ] ->
            measured := (name, est) :: !measured;
            Printf.printf "%-36s %18.1f\n%!" name est
          | _ -> Printf.printf "%-36s %18s\n%!" name "n/a")
        analyzed)
    tests;
  (match trace_out with
  | None -> ()
  | Some path ->
    (* A deterministic closing exercise so the dump always carries every
       span family — parse (full SQL stack), graph_build/dict/encode/csr
       (direct build), waves on >= 2 spawned-domain tracks — regardless
       of what the benchmark loops evicted from the ring. *)
    ignore (run_single setup q13_sql (pick ()));
    ignore (Graph.Runtime.build ~src ~dst);
    (* [oversubscribe] so two scheduler workers (and their tracks) exist
       even when this machine exposes a single core; a dedicated chain
       graph because the batch needs > 63 *distinct* sources to split
       into two wave tasks, and the benchmark graph can be smaller than
       that at smoke ratios. *)
    let closing_rt =
      let n = 200 in
      Graph.Runtime.build
        ~src:(Storage.Column.of_int_array (Array.init (n - 1) Fun.id))
        ~dst:(Storage.Column.of_int_array (Array.init (n - 1) (fun i -> i + 1)))
    in
    let closing_pairs =
      Array.init 128 (fun i -> (V.Int i, V.Int (i + 1)))
    in
    ignore
      (Graph.Runtime.run_pairs closing_rt ~weights:Graph.Runtime.Unweighted
         ~engine:`Batched ~domains:2 ~oversubscribe:true ~pairs:closing_pairs
         ());
    Telemetry.Trace.write_catapult ~path;
    Telemetry.Trace.set_enabled false;
    Printf.printf "wrote %s\n%!" path);
  match json with
  | None -> ()
  | Some path ->
    (* BENCH_*.json: the machine-readable perf trajectory (schema
       sqlgraph-bench-v1; one result object per kernel, ns per run) *)
    Sqlgraph.Metrics.write_file ~path
      (Sqlgraph.Metrics.Obj
         [
           ("schema", Sqlgraph.Metrics.String "sqlgraph-bench-v1");
           ("suite", Sqlgraph.Metrics.String "micro");
           ("ratio", Sqlgraph.Metrics.num ratio);
           ("seed", Sqlgraph.Metrics.Int seed);
           ( "results",
             Sqlgraph.Metrics.List
               (List.rev_map
                  (fun (name, ns) ->
                    Sqlgraph.Metrics.Obj
                      [
                        ("name", Sqlgraph.Metrics.String name);
                        ("ns_per_run", Sqlgraph.Metrics.num ns);
                      ])
                  !measured) );
         ]);
    Printf.printf "wrote %s\n%!" path

(* ------------------------------------------------------------------ *)
(* Command line                                                        *)
(* ------------------------------------------------------------------ *)

open Cmdliner

let ratio_arg =
  let doc =
    "Scale every scale factor's node and edge counts by this ratio \
     (1.0 = the paper's sizes)."
  in
  Arg.(value & opt float 1.0 & info [ "ratio" ] ~doc)

let sfs_arg =
  let doc = "Scale factors to run (known: 1 3 10 30 100 300)." in
  Arg.(value & opt (list int) [ 1; 3 ] & info [ "sf" ] ~doc)

let reps_arg =
  let doc = "Repetitions per measured point (the paper used 1000)." in
  Arg.(value & opt int 5 & info [ "reps" ] ~doc)

let seed_arg =
  let doc = "Deterministic seed for data and workload generation." in
  Arg.(value & opt int 20170519 & info [ "seed" ] ~doc)

let batches_arg =
  let doc = "Batch sizes for Figure 1b." in
  Arg.(
    value
    & opt (list int) [ 1; 2; 4; 8; 16; 32; 64; 128 ]
    & info [ "batches" ] ~doc)

let cmd name doc term = Cmd.v (Cmd.info name ~doc) term

let table1_cmd =
  cmd "table1" "Reproduce Table 1 (graph sizes)."
    Term.(
      const (fun ratio sfs seed -> table1 ~ratio ~sfs ~seed)
      $ ratio_arg $ sfs_arg $ seed_arg)

let fig1a_cmd =
  cmd "fig1a" "Reproduce Figure 1a (Q13 vs Q14-variant latency)."
    Term.(
      const (fun ratio sfs reps seed -> fig1a ~ratio ~sfs ~reps ~seed)
      $ ratio_arg $ sfs_arg $ reps_arg $ seed_arg)

let fig1b_cmd =
  cmd "fig1b" "Reproduce Figure 1b (latency per pair vs batch size)."
    Term.(
      const (fun ratio sfs batches reps seed ->
          fig1b ~ratio ~sfs ~batches ~reps ~seed)
      $ ratio_arg $ sfs_arg $ batches_arg $ reps_arg $ seed_arg)

let ablation_build_cmd =
  cmd "ablation-build" "Graph build vs traversal split (A1)."
    Term.(
      const (fun ratio sfs reps seed -> ablation_build ~ratio ~sfs ~reps ~seed)
      $ ratio_arg $ sfs_arg $ reps_arg $ seed_arg)

let ablation_heap_cmd =
  cmd "ablation-heap" "Radix vs binary heap Dijkstra (A2)."
    Term.(
      const (fun ratio sfs reps seed -> ablation_heap ~ratio ~sfs ~reps ~seed)
      $ ratio_arg $ sfs_arg $ reps_arg $ seed_arg)

let ablation_rewrite_cmd =
  cmd "ablation-rewrite" "Graph-join rewrite on/off (A3)."
    Term.(
      const (fun ratio sfs reps seed ->
          ablation_rewrite ~ratio ~sfs ~reps ~seed)
      $ ratio_arg $ sfs_arg $ reps_arg $ seed_arg)

let ablation_csr_cmd =
  cmd "ablation-csr" "CSR construction phases (A4)."
    Term.(
      const (fun ratio sfs seed -> ablation_csr ~ratio ~sfs ~seed)
      $ ratio_arg $ sfs_arg $ seed_arg)

let ablation_index_cmd =
  cmd "ablation-index" "Graph index on/off (A5, the paper's §6 idea)."
    Term.(
      const (fun ratio sfs reps seed -> ablation_index ~ratio ~sfs ~reps ~seed)
      $ ratio_arg $ sfs_arg $ reps_arg $ seed_arg)

let ablation_parallel_cmd =
  cmd "ablation-parallel" "Parallel batched traversal over domains (A7, the paper's §6)."
    Term.(
      const (fun ratio sfs seed -> ablation_parallel ~ratio ~sfs ~seed)
      $ ratio_arg $ sfs_arg $ seed_arg)

let ablation_dict_cmd =
  cmd "ablation-dict" "Specialized vs generic vertex dictionary (A6)."
    Term.(
      const (fun ratio sfs seed -> ablation_dict ~ratio ~sfs ~seed)
      $ ratio_arg $ sfs_arg $ seed_arg)

let ablation_vectorized_cmd =
  cmd "ablation-vectorized"
    "Column-at-a-time vs row-at-a-time evaluation (A8)."
    Term.(
      const (fun ratio sfs seed -> ablation_vectorized ~ratio ~sfs ~seed)
      $ ratio_arg $ sfs_arg $ seed_arg)

let baselines_cmd =
  cmd "baselines"
    "Extension vs standard-SQL baselines vs native BFS (B1, the paper's \
     motivation)."
    Term.(
      const (fun ratio sfs reps seed -> baselines_bench ~ratio ~sfs ~reps ~seed)
      $ ratio_arg $ sfs_arg $ reps_arg $ seed_arg)

let json_arg =
  let doc =
    "Write the micro-benchmark results to this file as JSON (schema \
     sqlgraph-bench-v1), e.g. BENCH_micro.json."
  in
  Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)

let trace_out_arg =
  let doc =
    "Enable span tracing and dump the ring buffer to this file as Chrome \
     trace-event JSON (chrome://tracing, Perfetto), e.g. TRACE_micro.json."
  in
  Arg.(value & opt (some string) None & info [ "trace-out" ] ~docv:"FILE" ~doc)

let micro_cmd =
  cmd "micro" "Bechamel micro-benchmarks."
    Term.(
      const (fun ratio seed json trace_out ->
          micro ?json ?trace_out ~ratio ~seed ())
      $ ratio_arg $ seed_arg $ json_arg $ trace_out_arg)

let sources_arg =
  let doc = "Number of ⟨source, destination⟩ pairs for the pairs scenario." in
  Arg.(value & opt int 512 & info [ "sources" ] ~doc)

let pairs_json_arg =
  let doc =
    "Write the pairs results to this file as JSON (schema \
     sqlgraph-bench-v1), e.g. BENCH_pairs.json."
  in
  Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)

let pairs_cmd =
  cmd "pairs"
    "Scalar per-source BFS vs batched MS-BFS on one multi-source batch (P1)."
    Term.(
      const (fun ratio sources seed json ->
          pairs_bench ?json ~ratio ~sources ~seed ())
      $ ratio_arg $ sources_arg $ seed_arg $ pairs_json_arg)

let wal_rows_arg =
  let doc = "Single-row INSERT statements per mode for the WAL scenario." in
  Arg.(value & opt int 25000 & info [ "rows" ] ~doc)

let wal_json_arg =
  let doc =
    "Write the WAL results to this file as JSON (schema sqlgraph-bench-v1), \
     e.g. BENCH_wal.json."
  in
  Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)

let wal_cmd =
  cmd "wal"
    "Write-ahead-log overhead: INSERT throughput in-memory vs --no-fsync vs \
     fsync'd."
    Term.(
      const (fun rows json -> wal_bench ?json ~rows ())
      $ wal_rows_arg $ wal_json_arg)

let server_commits_arg =
  let doc = "Total durable single-row INSERTs per concurrency level." in
  Arg.(value & opt int 800 & info [ "commits" ] ~doc)

let server_json_arg =
  let doc =
    "Write the server results to this file as JSON (schema \
     sqlgraph-bench-v1), e.g. BENCH_server.json."
  in
  Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)

let server_clients_arg =
  let doc = "Concurrent sessions for the group-commit measurement." in
  Arg.(value & opt int 16 & info [ "clients" ] ~doc)

let server_cmd =
  cmd "server"
    "Multi-session server: group-commit durable throughput vs a single \
     fsync'd session."
    Term.(
      const (fun commits clients json -> server_bench ?json ~commits ~clients ())
      $ server_commits_arg $ server_clients_arg $ server_json_arg)

let repl_rows_arg =
  let doc = "Rows in the pre-existing WAL the replica catches up on." in
  Arg.(value & opt int 5000 & info [ "rows" ] ~doc)

let repl_commits_arg =
  let doc = "Acknowledged commits in the steady-state phase." in
  Arg.(value & opt int 400 & info [ "commits" ] ~doc)

let repl_json_arg =
  let doc =
    "Write the replication results to this file as JSON (schema \
     sqlgraph-bench-v1), e.g. BENCH_repl.json."
  in
  Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)

let repl_cmd =
  cmd "repl"
    "Replication: replica catch-up bandwidth and steady-state apply lag."
    Term.(
      const (fun rows commits json -> repl_bench ?json ~rows ~commits ())
      $ repl_rows_arg $ repl_commits_arg $ repl_json_arg)

(* ------------------------------------------------------------------ *)
(* sim: the discrete-event workload simulator (stress tier) *)

let sim_bench ?json ~tier ~backend ~seed ~statements ~clients ~domains () =
  let cfg = Sim.Driver.config_of_tier ~backend ~seed ~domains tier in
  let cfg =
    {
      cfg with
      Sim.Driver.statements =
        (match statements with Some n -> n | None -> cfg.Sim.Driver.statements);
      clients =
        (match clients with Some n -> n | None -> cfg.Sim.Driver.clients);
    }
  in
  Printf.printf
    "== sim: %d clients, %d statements over %d persons / %d friendships \
     (seed %d, %s backend, domains %d) ==\n%!"
    cfg.Sim.Driver.clients cfg.Sim.Driver.statements cfg.Sim.Driver.persons
    cfg.Sim.Driver.friendships cfg.Sim.Driver.seed
    (match backend with
    | Sim.Driver.Inproc -> "inproc"
    | Sim.Driver.Server_sessions -> "server")
    cfg.Sim.Driver.domains;
  let report = Sim.Driver.run cfg in
  Sim.Driver.print_report report;
  Option.iter
    (fun path ->
      Sqlgraph.Metrics.write_file ~path (Sim.Driver.json_report cfg report);
      Printf.printf "wrote %s\n%!" path)
    json;
  if report.Sim.Driver.violation_count > 0 then exit 3

let sim_tier_arg =
  let doc = "Workload tier: small (~50k statements), medium (1M), large \
             (2M over an SF100-class graph)." in
  let tier =
    Arg.enum
      [
        ("small", Sim.Driver.Small);
        ("medium", Sim.Driver.Medium);
        ("large", Sim.Driver.Large);
      ]
  in
  Arg.(value & opt tier Sim.Driver.Small & info [ "tier" ] ~doc)

let sim_backend_arg =
  let doc = "Backend: inproc (WAL-backed Db, supports kill-and-recover) or \
             server (multi-session server over socketpairs)." in
  let backend =
    Arg.enum
      [
        ("inproc", Sim.Driver.Inproc); ("server", Sim.Driver.Server_sessions);
      ]
  in
  Arg.(value & opt backend Sim.Driver.Inproc & info [ "backend" ] ~doc)

let sim_statements_arg =
  let doc = "Override the tier's statement count." in
  Arg.(value & opt (some int) None & info [ "statements" ] ~doc)

let sim_clients_arg =
  let doc = "Override the tier's simulated client count." in
  Arg.(value & opt (some int) None & info [ "clients" ] ~doc)

let sim_domains_arg =
  let doc =
    "Traversal parallelism: SET parallelism applied to every backend db \
     (re-applied after kill-and-recover)."
  in
  Arg.(value & opt int 1 & info [ "domains" ] ~doc)

let sim_json_arg =
  let doc =
    "Write the sim report to this file as JSON (schema sqlgraph-bench-v1), \
     e.g. BENCH_sim.json."
  in
  Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)

let sim_cmd =
  cmd "sim"
    "Deterministic discrete-event workload simulator: seeded statement \
     mixes, invariant checks, kill-and-recover, per-class latency \
     percentiles."
    Term.(
      const (fun tier backend seed statements clients domains json ->
          sim_bench ?json ~tier ~backend ~seed ~statements ~clients ~domains ())
      $ sim_tier_arg $ sim_backend_arg $ seed_arg $ sim_statements_arg
      $ sim_clients_arg $ sim_domains_arg $ sim_json_arg)

let run_everything ratio sfs batches reps seed =
  table1 ~ratio ~sfs ~seed;
  fig1a ~ratio ~sfs ~reps ~seed;
  fig1b ~ratio ~sfs ~batches ~reps ~seed;
  ablation_build ~ratio ~sfs ~reps ~seed;
  ablation_heap ~ratio ~sfs ~reps ~seed;
  ablation_rewrite ~ratio ~sfs ~reps ~seed;
  ablation_csr ~ratio ~sfs ~seed;
  ablation_index ~ratio ~sfs ~reps ~seed;
  ablation_dict ~ratio ~sfs ~seed;
  ablation_parallel ~ratio ~sfs ~seed;
  ablation_vectorized ~ratio ~sfs ~seed;
  baselines_bench ~ratio ~sfs ~reps ~seed;
  pairs_bench ~ratio ~sources:512 ~seed ();
  wal_bench ~rows:25000 ();
  server_bench ~commits:800 ~clients:16 ();
  micro ~ratio ~seed ()

let all_cmd =
  cmd "all" "Run every table, figure and ablation with the given settings."
    Term.(
      const run_everything $ ratio_arg $ sfs_arg $ batches_arg $ reps_arg
      $ seed_arg)

let () =
  let default =
    Term.(
      const run_everything $ ratio_arg $ sfs_arg $ batches_arg $ reps_arg
      $ seed_arg)
  in
  let info =
    Cmd.info "sqlgraph-bench"
      ~doc:
        "Reproduce the evaluation of 'Extending SQL for Computing Shortest \
         Paths' (GRADES'17)."
  in
  exit
    (Cmd.eval
       (Cmd.group ~default info
          [
            table1_cmd; fig1a_cmd; fig1b_cmd; ablation_build_cmd;
            ablation_heap_cmd; ablation_rewrite_cmd; ablation_csr_cmd;
            ablation_index_cmd; ablation_dict_cmd; ablation_parallel_cmd;
            ablation_vectorized_cmd; baselines_cmd; pairs_cmd; wal_cmd;
            server_cmd; repl_cmd; sim_cmd; micro_cmd; all_cmd;
          ]))
