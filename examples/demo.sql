-- A self-contained tour of the shortest-path extension.
-- Run with:  dune exec bin/sqlgraph_cli.exe -- run examples/demo.sql

CREATE TABLE persons (id INTEGER, firstName VARCHAR, lastName VARCHAR);
INSERT INTO persons VALUES
  (933,  'Mahinda', 'Perera'),
  (1129, 'Carmen',  'Lepland'),
  (8333, 'Chen',    'Wang'),
  (4139, 'Hans',    'Johansson');

CREATE TABLE friends (src INTEGER, dst INTEGER, creationDate DATE, weight DOUBLE);
INSERT INTO friends VALUES
  (933, 1129,  '2010-03-24', 0.5), (1129, 933,  '2010-03-24', 0.5),
  (1129, 8333, '2010-12-02', 2.0), (8333, 1129, '2010-12-02', 2.0),
  (8333, 4139, '2012-05-01', 1.0), (4139, 8333, '2012-05-01', 1.0);

-- reachability is a WHERE-clause predicate (paper appendix A.3)
SELECT firstName || ' ' || lastName AS person
FROM persons
WHERE 933 REACHES id OVER friends EDGE (src, dst);

-- hop distance: CHEAPEST SUM(1) (LDBC Q13, appendix A.1)
SELECT CHEAPEST SUM(1) AS distance
WHERE 933 REACHES 8333 OVER friends EDGE (src, dst);

-- weighted shortest paths with the path value, flattened by UNNEST
-- (appendix A.4's result table)
SELECT T.person, T.cost, R.src, R.dst
FROM (
  WITH friends1 AS (SELECT * FROM friends WHERE creationDate < '2011-01-01')
  SELECT firstName || ' ' || lastName AS person,
         CHEAPEST SUM(f: CAST(weight * 2 AS INTEGER)) AS (cost, path)
  FROM persons
  WHERE 933 REACHES id OVER friends1 f EDGE (src, dst)
) T, UNNEST(T.path) AS R;

-- the plan, showing the paper's graph operators
EXPLAIN SELECT p1.id, p2.id, CHEAPEST SUM(1) AS d
FROM persons p1, persons p2
WHERE p1.id = 933 AND p2.id = 4139
  AND p1.id REACHES p2.id OVER friends EDGE (src, dst);

-- standard SQL still works, of course
SELECT COUNT(*) AS friendships, AVG(weight) AS avg_affinity,
       MIN(creationDate) AS earliest
FROM friends;
